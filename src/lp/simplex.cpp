#include "lp/simplex.h"

#include <algorithm>
#include <chrono>

#include "lp/fastlane.h"
#include "support/arena.h"
#include "support/budget.h"
#include "support/metrics.h"
#include "support/stats.h"

namespace pf::lp {

namespace {

// Per-thread running pivot total (both lanes bump it); minimize()
// snapshots it around a solve to feed the pivots-per-solve histogram.
thread_local i64 tl_pivots = 0;

// Distribution probe for one top-level SimplexSolver::minimize: pivot
// delta + wall time, observed on every return path via RAII.
struct SolveProbe {
  i64 pivots0 = tl_pivots;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  ~SolveProbe() {
    support::observe(support::Hist::kSimplexPivotsPerSolve,
                     tl_pivots - pivots0);
    support::observe(
        support::Hist::kSimplexSolveMicros,
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
};

}  // namespace

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
  }
  return "?";
}

SimplexSolver::SimplexSolver(std::size_t num_vars, std::vector<bool> nonneg)
    : num_vars_(num_vars), nonneg_(std::move(nonneg)) {
  PF_CHECK(nonneg_.size() == num_vars_);
}

SimplexSolver SimplexSolver::all_nonneg(std::size_t num_vars) {
  return SimplexSolver(num_vars, std::vector<bool>(num_vars, true));
}

SimplexSolver SimplexSolver::all_free(std::size_t num_vars) {
  return SimplexSolver(num_vars, std::vector<bool>(num_vars, false));
}

void SimplexSolver::add_inequality(RatVector coeffs, Rational constant) {
  PF_CHECK(coeffs.size() == num_vars_);
  rows_.push_back(Row{std::move(coeffs), constant, /*is_equality=*/false});
}

void SimplexSolver::add_equality(RatVector coeffs, Rational constant) {
  PF_CHECK(coeffs.size() == num_vars_);
  rows_.push_back(Row{std::move(coeffs), constant, /*is_equality=*/true});
}

namespace {

// Shared column layout of both tableau lanes: for each variable j,
// col_pos[j]; for free vars also col_neg[j] (x_j = pos - neg). Then one
// slack per inequality, then one artificial per row that needs one
// (equalities, and inequalities infeasible at x = 0).
struct Layout {
  std::vector<std::size_t> col_pos, col_neg;
  std::size_t first_slack = 0;
  std::size_t num_slacks = 0;
  std::size_t first_artificial = 0;
  std::size_t num_artificials = 0;
  std::size_t nc = 0;  // variable columns (excl. rhs)
};

template <typename RowVec>
Layout make_layout(std::size_t num_vars, const std::vector<bool>& nonneg,
                   const RowVec& rows) {
  Layout lay;
  lay.col_pos.resize(num_vars);
  lay.col_neg.assign(num_vars, SIZE_MAX);
  std::size_t nc = 0;
  for (std::size_t j = 0; j < num_vars; ++j) {
    lay.col_pos[j] = nc++;
    if (!nonneg[j]) lay.col_neg[j] = nc++;
  }
  lay.first_slack = nc;
  for (const auto& r : rows)
    if (!r.is_equality) ++lay.num_slacks;
  nc += lay.num_slacks;
  lay.first_artificial = nc;
  for (const auto& r : rows)
    if (r.is_equality || r.constant < 0) ++lay.num_artificials;
  nc += lay.num_artificials;
  lay.nc = nc;
  return lay;
}

// Dense simplex tableau. Columns 0..ncols-1 are structural/slack/artificial
// variables; column ncols is the right-hand side. Row `m` (the last) is the
// reduced-cost row; its RHS cell holds the negated objective value.
struct Tableau {
  std::size_t m = 0;      // constraint rows
  std::size_t ncols = 0;  // variable columns (excl. rhs)
  std::vector<RatVector> t;
  std::vector<std::size_t> basis;  // basis[i] = column basic in row i

  Rational& at(std::size_t r, std::size_t c) { return t[r][c]; }
  const Rational& at(std::size_t r, std::size_t c) const { return t[r][c]; }
  Rational& rhs(std::size_t r) { return t[r][ncols]; }
  const Rational& rhs(std::size_t r) const { return t[r][ncols]; }

  void pivot(std::size_t pr, std::size_t pc) {
    support::count(support::Counter::kSimplexPivots);
    ++tl_pivots;
    // A pivot's real cost is the row sweep, so it charges one LP fuel
    // unit per tableau row (cf. ISL counting low-level operations, not
    // pivots); exhaustion unwinds out of the whole solve to the
    // caller's recovery boundary.
    support::budget_charge(support::BudgetSite::kLpSolve,
                           static_cast<i64>(m) + 1);
    const Rational inv = at(pr, pc).reciprocal();
    for (auto& v : t[pr]) v *= inv;
    for (std::size_t r = 0; r <= m; ++r) {
      if (r == pr || at(r, pc).is_zero()) continue;
      const Rational factor = at(r, pc);
      for (std::size_t c = 0; c <= ncols; ++c) t[r][c] -= factor * t[pr][c];
    }
    basis[pr] = pc;
  }

  // One phase of Bland-rule simplex on the current cost row. Columns
  // < limit are eligible to enter the basis (phase 2 bars artificials,
  // which always form a suffix). Returns false if unbounded.
  bool optimize(std::size_t limit) {
    for (;;) {
      // Entering: smallest-index allowed column with negative reduced cost.
      std::size_t enter = ncols;
      for (std::size_t c = 0; c < limit; ++c) {
        if (at(m, c).sign() < 0) {
          enter = c;
          break;
        }
      }
      if (enter == ncols) return true;  // optimal
      // Leaving: min ratio rhs/entry over positive entries, Bland tie-break
      // on smallest basis column.
      std::size_t leave = m;
      Rational best_ratio(0);
      for (std::size_t r = 0; r < m; ++r) {
        if (at(r, enter).sign() <= 0) continue;
        const Rational ratio = rhs(r) / at(r, enter);
        if (leave == m || ratio < best_ratio ||
            (ratio == best_ratio && basis[r] < basis[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m) return false;  // unbounded
      pivot(leave, enter);
    }
  }

  // Installs cost vector c (size ncols) into the cost row, pricing out the
  // current basis.
  void set_costs(const RatVector& costs) {
    for (std::size_t c = 0; c < ncols; ++c) at(m, c) = costs[c];
    rhs(m) = Rational(0);
    for (std::size_t r = 0; r < m; ++r) {
      const Rational cb = costs[basis[r]];
      if (cb.is_zero()) continue;
      for (std::size_t c = 0; c <= ncols; ++c) t[m][c] -= cb * t[r][c];
    }
  }
};

// ---------------------------------------------------------------------------
// The int64 fast lane.
//
// Same tableau, same pivot rule, same answers -- but each row is stored as
// int64 numerators over one per-row denominator instead of a vector of
// canonicalized Rationals, so a pivot is a fused integer row operation
// (two 128-bit multiplies and a subtract per cell, one gcd per row)
// instead of ncols Rational multiply-subtracts with a gcd each.
//
// Every entry is kept below 2^62 (kFastLimit), which makes all the 128-bit
// intermediates provably exact: products of two in-range values stay below
// 2^124 and their sums below 2^125, well inside __int128. Any value that
// would leave the range throws FastlaneOverflow and the caller reruns the
// solve on the exact Rational tableau -- the lane is transparently
// correct-or-absent, never wrong.
//
// Pivot-for-pivot identity with the Rational lane: the entering test reads
// only reduced-cost signs (per-row denominators are positive, so signs
// live in the numerators), and the leaving test compares ratios
// rhs(r)/a(r) in which the row denominator cancels -- cross-multiplied in
// 128 bits, exactly. Scaling the cost row by the positive lcm of the
// objective's denominators preserves every sign, so both lanes take the
// same pivots and return bit-identical Results.

struct FastlaneOverflow {};

constexpr i64 kFastLimit = i64{1} << 62;

inline i64 fl_narrow(i128 v) {
  if (v >= static_cast<i128>(kFastLimit) || v <= -static_cast<i128>(kFastLimit))
    throw FastlaneOverflow{};
  return static_cast<i64>(v);
}

inline i128 abs128(i128 v) { return v < 0 ? -v : v; }

i128 gcd128(i128 a, i128 b) {
  a = abs128(a);
  b = abs128(b);
  while (b != 0) {
    const i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// lcm of positive denominators; overflow exits to the Rational lane (the
// exact tableau never scales, so this must not surface as a pf::Error).
inline i64 fl_lcm(i64 a, i64 b) {
  return fl_narrow(static_cast<i128>(a / gcd(a, b)) * b);
}

// v scaled to the common denominator `den` (a multiple of v.den()).
inline i64 fl_scaled(const Rational& v, i64 den) {
  return fl_narrow(static_cast<i128>(v.num()) * (den / v.den()));
}

// Integer tableau: value(r, c) = nums[r * stride + c] / dens[r], with
// dens[r] > 0 and every stored integer in (-2^62, 2^62). Storage comes
// from the thread's arena (released wholesale by the caller's ArenaScope).
struct IntTableau {
  std::size_t m = 0;
  std::size_t ncols = 0;
  std::size_t stride = 0;  // ncols + 1 (rhs in the last cell)
  i64* nums = nullptr;     // (m + 1) * stride
  i64* dens = nullptr;     // m + 1
  i128* scratch = nullptr;  // stride; the in-flight combined row
  std::size_t* basis = nullptr;  // m

  i64* row(std::size_t r) { return nums + r * stride; }
  const i64* row(std::size_t r) const { return nums + r * stride; }
  i64 num_at(std::size_t r, std::size_t c) const { return row(r)[c]; }

  // Divide row r (and its denominator) by their common gcd, keeping the
  // representation small across pivots.
  void reduce_row(std::size_t r) {
    i64* q = row(r);
    i64 g = dens[r];
    for (std::size_t c = 0; c <= ncols && g != 1; ++c) g = gcd(g, q[c]);
    if (g <= 1) return;
    for (std::size_t c = 0; c <= ncols; ++c) q[c] /= g;
    dens[r] /= g;
  }

  // Store scratch / den128 into row r in lowest terms; throws
  // FastlaneOverflow when the reduced row leaves the safe range.
  void store_reduced(std::size_t r, i128 den128) {
    i128 g = den128;
    for (std::size_t c = 0; c <= ncols && g != 1; ++c)
      if (scratch[c] != 0) g = gcd128(g, scratch[c]);
    i64* q = row(r);
    for (std::size_t c = 0; c <= ncols; ++c) q[c] = fl_narrow(scratch[c] / g);
    dens[r] = fl_narrow(den128 / g);
  }

  void pivot(std::size_t pr, std::size_t pc) {
    support::count(support::Counter::kSimplexPivots);
    ++tl_pivots;
    support::budget_charge(support::BudgetSite::kLpSolve,
                           static_cast<i64>(m) + 1);
    // Scale the pivot row so its pivot cell becomes 1: dividing every
    // value p[c]/dp by the pivot value p[pc]/dp leaves p[c]/p[pc], so the
    // numerators stay put and the pivot numerator becomes the denominator
    // (row negated first when it is negative, keeping dens > 0).
    i64* p = row(pr);
    if (p[pc] < 0)
      for (std::size_t c = 0; c <= ncols; ++c) p[c] = -p[c];
    dens[pr] = p[pc];
    reduce_row(pr);
    const i64 dp = dens[pr];
    for (std::size_t r = 0; r <= m; ++r) {
      if (r == pr) continue;
      i64* q = row(r);
      const i64 f = q[pc];
      if (f == 0) continue;
      const i64 dr = dens[r];
      // value'(c) = q[c]/dr - (f/dr) * (p[c]/dp)
      //          = (q[c]*dp - f*p[c]) / (dr*dp)
      for (std::size_t c = 0; c <= ncols; ++c)
        scratch[c] = static_cast<i128>(q[c]) * dp - static_cast<i128>(f) * p[c];
      store_reduced(r, static_cast<i128>(dr) * dp);
    }
    basis[pr] = pc;
  }

  bool optimize(std::size_t limit) {
    for (;;) {
      const i64* cost = row(m);
      std::size_t enter = ncols;
      for (std::size_t c = 0; c < limit; ++c) {
        if (cost[c] < 0) {
          enter = c;
          break;
        }
      }
      if (enter == ncols) return true;  // optimal
      // Leaving: min rhs(r)/a(r, enter) over positive entries. The row
      // denominator cancels inside the ratio, so it is rhs_num/a_num;
      // cross-rows compare by 128-bit cross-multiplication (both
      // divisors positive, so the inequality direction is preserved).
      std::size_t leave = m;
      i64 best_rhs = 0, best_a = 1;
      for (std::size_t r = 0; r < m; ++r) {
        const i64 a = num_at(r, enter);
        if (a <= 0) continue;
        const i64 rh = num_at(r, ncols);
        if (leave != m) {
          const i128 lhs = static_cast<i128>(rh) * best_a;
          const i128 rhs = static_cast<i128>(best_rhs) * a;
          if (lhs > rhs) continue;
          if (lhs == rhs && basis[leave] < basis[r]) continue;
        }
        leave = r;
        best_rhs = rh;
        best_a = a;
      }
      if (leave == m) return false;  // unbounded
      pivot(leave, enter);
    }
  }

  // Integer cost vector (the caller pre-scales rational objectives by a
  // positive constant, which preserves every reduced-cost sign).
  void set_costs(const i64* costs) {
    i64* cost = row(m);
    for (std::size_t c = 0; c < ncols; ++c) cost[c] = costs[c];
    cost[ncols] = 0;
    dens[m] = 1;
    for (std::size_t r = 0; r < m; ++r) {
      const i64 cb = costs[basis[r]];
      if (cb == 0) continue;
      const i64* q = row(r);
      const i64 dr = dens[r];
      const i64 dm = dens[m];
      // cost'(c) = cost[c]/dm - cb * q[c]/dr
      //          = (cost[c]*dr - (cb*dm)*q[c]) / (dm*dr)
      // cb*dm is narrowed first so the per-cell product stays two-term.
      const i64 cbdm = fl_narrow(static_cast<i128>(cb) * dm);
      for (std::size_t c = 0; c <= ncols; ++c)
        scratch[c] = static_cast<i128>(cost[c]) * dr -
                     static_cast<i128>(cbdm) * q[c];
      store_reduced(m, static_cast<i128>(dm) * dr);
    }
  }
};

}  // namespace

SimplexSolver::Result SimplexSolver::minimize(
    const RatVector& objective) const {
  PF_CHECK(objective.size() == num_vars_);
  SolveProbe probe;
  if (fastlane_enabled()) {
    if (support::budget_injection_fires(support::BudgetSite::kLpFastlane)) {
      // --inject lp.fastlane:fail-after=K forces this solve down the
      // Rational lane; both lanes return the same bits, so this is a
      // pure coverage knob, not a fault.
      support::count(support::Counter::kFastlaneFallbacks);
      support::observe(support::Hist::kFastlaneFallbackCause,
                       support::kFallbackSimplexInjected);
    } else {
      try {
        Result res = minimize_fast(objective);
        support::count(support::Counter::kFastlaneSolves);
        return res;
      } catch (const FastlaneOverflow&) {
        support::count(support::Counter::kFastlaneFallbacks);
        support::observe(support::Hist::kFastlaneFallbackCause,
                         support::kFallbackSimplexOverflow);
      }
    }
  }
  return minimize_exact(objective);
}

SimplexSolver::Result SimplexSolver::minimize_fast(
    const RatVector& objective) const {
  support::Arena& arena = support::Arena::thread_local_instance();
  support::ArenaScope scope(arena);

  const Layout lay = make_layout(num_vars_, nonneg_, rows_);
  const std::size_t nc = lay.nc;

  IntTableau tab;
  tab.m = rows_.size();
  tab.ncols = nc;
  tab.stride = nc + 1;
  tab.nums = arena.alloc_array<i64>((tab.m + 1) * tab.stride);
  tab.dens = arena.alloc_array<i64>(tab.m + 1);
  tab.scratch = arena.alloc_array<i128>(tab.stride);
  tab.basis = arena.alloc_array<std::size_t>(std::max<std::size_t>(tab.m, 1));
  std::fill_n(tab.nums, (tab.m + 1) * tab.stride, i64{0});
  std::fill_n(tab.dens, tab.m + 1, i64{1});
  std::fill_n(tab.basis, tab.m, std::size_t{0});

  // Build the constraint rows. Each row is brought to one common
  // denominator (the lcm of its cells' denominators); scaling a row by a
  // positive constant changes no represented value.
  std::size_t slack_idx = 0;
  std::size_t artificial_idx = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    i64 den = 1;
    for (const Rational& v : r.coeffs) den = fl_lcm(den, v.den());
    den = fl_lcm(den, r.constant.den());
    i64* row = tab.row(i);
    // coeffs . x + constant >= 0  becomes  coeffs . x - s = -constant.
    for (std::size_t j = 0; j < num_vars_; ++j) {
      const i64 n = fl_scaled(r.coeffs[j], den);
      row[lay.col_pos[j]] = n;
      if (lay.col_neg[j] != SIZE_MAX) row[lay.col_neg[j]] = -n;
    }
    if (!r.is_equality) {
      row[lay.first_slack + slack_idx] = -den;
      ++slack_idx;
    }
    row[nc] = -fl_scaled(r.constant, den);
    tab.dens[i] = den;
    if (!r.is_equality && r.constant >= 0) {
      // Slack value at x = 0 is `constant` >= 0: negate the row so the
      // slack column is positive with a non-negative RHS, and make it
      // basic.
      for (std::size_t c = 0; c <= nc; ++c) row[c] = -row[c];
      tab.basis[i] = lay.first_slack + slack_idx - 1;
      tab.reduce_row(i);
      continue;
    }
    // Normalize RHS >= 0, then attach an artificial (coefficient 1, i.e.
    // the row's denominator).
    if (row[nc] < 0)
      for (std::size_t c = 0; c <= nc; ++c) row[c] = -row[c];
    row[lay.first_artificial + artificial_idx] = den;
    tab.basis[i] = lay.first_artificial + artificial_idx;
    ++artificial_idx;
    tab.reduce_row(i);
  }

  // Phase 1: minimize the sum of artificials (skipped when none exist).
  if (lay.num_artificials > 0) {
    i64* costs = arena.alloc_array<i64>(nc);
    std::fill_n(costs, nc, i64{0});
    for (std::size_t a = 0; a < lay.num_artificials; ++a)
      costs[lay.first_artificial + a] = 1;
    tab.set_costs(costs);
    const bool bounded = tab.optimize(nc);
    PF_CHECK_MSG(bounded, "phase-1 objective cannot be unbounded");
    // Objective value is -rhs of the cost row; infeasible when positive.
    if (tab.num_at(tab.m, nc) < 0)
      return Result{Status::kInfeasible, {}, Rational(0)};
    // Pivot remaining artificials (at value 0) out of the basis where
    // possible; rows with no non-artificial entry are redundant and stay
    // (they are all-zero, harmless).
    for (std::size_t r = 0; r < tab.m; ++r) {
      if (tab.basis[r] < lay.first_artificial) continue;
      std::size_t c = 0;
      while (c < lay.first_artificial && tab.num_at(r, c) == 0) ++c;
      if (c < lay.first_artificial) tab.pivot(r, c);
    }
  }

  // Phase 2: the original objective, scaled integral by the positive lcm
  // of its denominators (undone when the objective value is read back);
  // artificial columns are barred.
  i64 obj_scale = 1;
  {
    for (const Rational& v : objective) obj_scale = fl_lcm(obj_scale, v.den());
    i64* costs = arena.alloc_array<i64>(nc);
    std::fill_n(costs, nc, i64{0});
    for (std::size_t j = 0; j < num_vars_; ++j) {
      const i64 n = fl_scaled(objective[j], obj_scale);
      costs[lay.col_pos[j]] = n;
      if (lay.col_neg[j] != SIZE_MAX) costs[lay.col_neg[j]] = -n;
    }
    tab.set_costs(costs);
    if (!tab.optimize(lay.first_artificial))
      return Result{Status::kUnbounded, {}, Rational(0)};
  }

  // Extract solution.
  RatVector values(nc, Rational(0));
  for (std::size_t r = 0; r < tab.m; ++r)
    values[tab.basis[r]] = Rational(tab.num_at(r, nc), tab.dens[r]);
  Result res;
  res.status = Status::kOptimal;
  res.point.resize(num_vars_);
  for (std::size_t j = 0; j < num_vars_; ++j) {
    res.point[j] = values[lay.col_pos[j]];
    if (lay.col_neg[j] != SIZE_MAX) res.point[j] -= values[lay.col_neg[j]];
  }
  // objective = -rhs(m) / obj_scale.
  {
    const i128 onum = -static_cast<i128>(tab.num_at(tab.m, nc));
    const i128 oden = static_cast<i128>(tab.dens[tab.m]) * obj_scale;
    const i128 g = onum == 0 ? oden : gcd128(onum, oden);
    res.objective = Rational(fl_narrow(onum / g), fl_narrow(oden / g));
  }
  return res;
}

SimplexSolver::Result SimplexSolver::minimize_exact(
    const RatVector& objective) const {
  const Layout lay = make_layout(num_vars_, nonneg_, rows_);
  const std::size_t nc = lay.nc;

  Tableau tab;
  tab.m = rows_.size();
  tab.ncols = nc;
  tab.t.assign(tab.m + 1, RatVector(nc + 1, Rational(0)));
  tab.basis.assign(tab.m, 0);

  std::size_t slack_idx = 0;
  std::size_t artificial_idx = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    // coeffs . x + constant >= 0  becomes  coeffs . x - s = -constant.
    for (std::size_t j = 0; j < num_vars_; ++j) {
      tab.at(i, lay.col_pos[j]) = r.coeffs[j];
      if (lay.col_neg[j] != SIZE_MAX) tab.at(i, lay.col_neg[j]) = -r.coeffs[j];
    }
    if (!r.is_equality) {
      tab.at(i, lay.first_slack + slack_idx) = Rational(-1);
      ++slack_idx;
    }
    tab.rhs(i) = -r.constant;
    if (!r.is_equality && r.constant >= 0) {
      // Slack value at x = 0 is `constant` >= 0: negate the row so the
      // slack column has +1 and a non-negative RHS, and make it basic.
      for (std::size_t c = 0; c <= nc; ++c) tab.t[i][c] = -tab.t[i][c];
      tab.basis[i] = lay.first_slack + slack_idx - 1;
      continue;
    }
    // Normalize RHS >= 0, then attach an artificial.
    if (tab.rhs(i).sign() < 0) {
      for (std::size_t c = 0; c <= nc; ++c) tab.t[i][c] = -tab.t[i][c];
    }
    tab.at(i, lay.first_artificial + artificial_idx) = Rational(1);
    tab.basis[i] = lay.first_artificial + artificial_idx;
    ++artificial_idx;
  }

  // Phase 1: minimize the sum of artificials (skipped when none exist).
  if (lay.num_artificials > 0) {
    RatVector costs(nc, Rational(0));
    for (std::size_t a = 0; a < lay.num_artificials; ++a)
      costs[lay.first_artificial + a] = Rational(1);
    tab.set_costs(costs);
    const bool bounded = tab.optimize(nc);
    PF_CHECK_MSG(bounded, "phase-1 objective cannot be unbounded");
    // Objective value is -rhs of the cost row.
    if ((-tab.rhs(tab.m)).sign() > 0)
      return Result{Status::kInfeasible, {}, Rational(0)};
    // Pivot remaining artificials (at value 0) out of the basis where
    // possible; rows with no non-artificial entry are redundant and stay
    // (they are all-zero, harmless).
    for (std::size_t r = 0; r < tab.m; ++r) {
      if (tab.basis[r] < lay.first_artificial) continue;
      std::size_t c = 0;
      while (c < lay.first_artificial && tab.at(r, c).is_zero()) ++c;
      if (c < lay.first_artificial) tab.pivot(r, c);
    }
  }

  // Phase 2: original objective; artificial columns are barred.
  {
    RatVector costs(nc, Rational(0));
    for (std::size_t j = 0; j < num_vars_; ++j) {
      costs[lay.col_pos[j]] = objective[j];
      if (lay.col_neg[j] != SIZE_MAX) costs[lay.col_neg[j]] = -objective[j];
    }
    tab.set_costs(costs);
    if (!tab.optimize(lay.first_artificial))
      return Result{Status::kUnbounded, {}, Rational(0)};
  }

  // Extract solution.
  RatVector values(nc, Rational(0));
  for (std::size_t r = 0; r < tab.m; ++r) values[tab.basis[r]] = tab.rhs(r);
  Result res;
  res.status = Status::kOptimal;
  res.point.resize(num_vars_);
  for (std::size_t j = 0; j < num_vars_; ++j) {
    res.point[j] = values[lay.col_pos[j]];
    if (lay.col_neg[j] != SIZE_MAX) res.point[j] -= values[lay.col_neg[j]];
  }
  res.objective = -tab.rhs(tab.m);
  return res;
}

SimplexSolver::Result SimplexSolver::maximize(const RatVector& objective) const {
  RatVector neg(objective.size());
  for (std::size_t i = 0; i < objective.size(); ++i) neg[i] = -objective[i];
  Result r = minimize(neg);
  if (r.status == Status::kOptimal) r.objective = -r.objective;
  return r;
}

SimplexSolver::Result SimplexSolver::feasible_point() const {
  return minimize(RatVector(num_vars_, Rational(0)));
}

}  // namespace pf::lp
