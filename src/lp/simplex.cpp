#include "lp/simplex.h"

#include <algorithm>

#include "support/budget.h"
#include "support/stats.h"

namespace pf::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
  }
  return "?";
}

SimplexSolver::SimplexSolver(std::size_t num_vars, std::vector<bool> nonneg)
    : num_vars_(num_vars), nonneg_(std::move(nonneg)) {
  PF_CHECK(nonneg_.size() == num_vars_);
}

SimplexSolver SimplexSolver::all_nonneg(std::size_t num_vars) {
  return SimplexSolver(num_vars, std::vector<bool>(num_vars, true));
}

SimplexSolver SimplexSolver::all_free(std::size_t num_vars) {
  return SimplexSolver(num_vars, std::vector<bool>(num_vars, false));
}

void SimplexSolver::add_inequality(RatVector coeffs, Rational constant) {
  PF_CHECK(coeffs.size() == num_vars_);
  rows_.push_back(Row{std::move(coeffs), constant, /*is_equality=*/false});
}

void SimplexSolver::add_equality(RatVector coeffs, Rational constant) {
  PF_CHECK(coeffs.size() == num_vars_);
  rows_.push_back(Row{std::move(coeffs), constant, /*is_equality=*/true});
}

namespace {

// Dense simplex tableau. Columns 0..ncols-1 are structural/slack/artificial
// variables; column ncols is the right-hand side. Row `m` (the last) is the
// reduced-cost row; its RHS cell holds the negated objective value.
struct Tableau {
  std::size_t m = 0;      // constraint rows
  std::size_t ncols = 0;  // variable columns (excl. rhs)
  std::vector<RatVector> t;
  std::vector<std::size_t> basis;  // basis[i] = column basic in row i

  Rational& at(std::size_t r, std::size_t c) { return t[r][c]; }
  const Rational& at(std::size_t r, std::size_t c) const { return t[r][c]; }
  Rational& rhs(std::size_t r) { return t[r][ncols]; }
  const Rational& rhs(std::size_t r) const { return t[r][ncols]; }

  void pivot(std::size_t pr, std::size_t pc) {
    support::count(support::Counter::kSimplexPivots);
    // A pivot's real cost is the row sweep, so it charges one LP fuel
    // unit per tableau row (cf. ISL counting low-level operations, not
    // pivots); exhaustion unwinds out of the whole solve to the
    // caller's recovery boundary.
    support::budget_charge(support::BudgetSite::kLpSolve,
                           static_cast<i64>(m) + 1);
    const Rational inv = at(pr, pc).reciprocal();
    for (auto& v : t[pr]) v *= inv;
    for (std::size_t r = 0; r <= m; ++r) {
      if (r == pr || at(r, pc).is_zero()) continue;
      const Rational factor = at(r, pc);
      for (std::size_t c = 0; c <= ncols; ++c) t[r][c] -= factor * t[pr][c];
    }
    basis[pr] = pc;
  }

  // One phase of Bland-rule simplex on the current cost row. `allowed`
  // masks the columns eligible to enter the basis. Returns false if
  // unbounded.
  bool optimize(const std::vector<bool>& allowed) {
    for (;;) {
      // Entering: smallest-index allowed column with negative reduced cost.
      std::size_t enter = ncols;
      for (std::size_t c = 0; c < ncols; ++c) {
        if (allowed[c] && at(m, c).sign() < 0) {
          enter = c;
          break;
        }
      }
      if (enter == ncols) return true;  // optimal
      // Leaving: min ratio rhs/entry over positive entries, Bland tie-break
      // on smallest basis column.
      std::size_t leave = m;
      Rational best_ratio(0);
      for (std::size_t r = 0; r < m; ++r) {
        if (at(r, enter).sign() <= 0) continue;
        const Rational ratio = rhs(r) / at(r, enter);
        if (leave == m || ratio < best_ratio ||
            (ratio == best_ratio && basis[r] < basis[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
      if (leave == m) return false;  // unbounded
      pivot(leave, enter);
    }
  }

  // Installs cost vector c (size ncols) into the cost row, pricing out the
  // current basis.
  void set_costs(const RatVector& costs) {
    for (std::size_t c = 0; c < ncols; ++c) at(m, c) = costs[c];
    rhs(m) = Rational(0);
    for (std::size_t r = 0; r < m; ++r) {
      const Rational cb = costs[basis[r]];
      if (cb.is_zero()) continue;
      for (std::size_t c = 0; c <= ncols; ++c) t[m][c] -= cb * t[r][c];
    }
  }
};

}  // namespace

SimplexSolver::Result SimplexSolver::minimize(const RatVector& objective) const {
  PF_CHECK(objective.size() == num_vars_);

  // Column layout: for each variable j, col_pos[j]; for free vars also
  // col_neg[j] (x_j = pos - neg). Then one slack per inequality, then one
  // artificial per row.
  std::vector<std::size_t> col_pos(num_vars_), col_neg(num_vars_, SIZE_MAX);
  std::size_t nc = 0;
  for (std::size_t j = 0; j < num_vars_; ++j) {
    col_pos[j] = nc++;
    if (!nonneg_[j]) col_neg[j] = nc++;
  }
  const std::size_t first_slack = nc;
  std::size_t num_slacks = 0;
  for (const Row& r : rows_)
    if (!r.is_equality) ++num_slacks;
  nc += num_slacks;
  const std::size_t first_artificial = nc;
  // Artificials only for rows whose slack cannot serve as the initial
  // basic variable: equalities, and inequalities with negative slack
  // value at x = 0 (i.e. constant < 0).
  std::size_t num_artificials = 0;
  for (const Row& r : rows_)
    if (r.is_equality || r.constant < 0) ++num_artificials;
  nc += num_artificials;

  Tableau tab;
  tab.m = rows_.size();
  tab.ncols = nc;
  tab.t.assign(tab.m + 1, RatVector(nc + 1, Rational(0)));
  tab.basis.assign(tab.m, 0);

  std::size_t slack_idx = 0;
  std::size_t artificial_idx = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    // coeffs . x + constant >= 0  becomes  coeffs . x - s = -constant.
    for (std::size_t j = 0; j < num_vars_; ++j) {
      tab.at(i, col_pos[j]) = r.coeffs[j];
      if (col_neg[j] != SIZE_MAX) tab.at(i, col_neg[j]) = -r.coeffs[j];
    }
    if (!r.is_equality) {
      tab.at(i, first_slack + slack_idx) = Rational(-1);
      ++slack_idx;
    }
    tab.rhs(i) = -r.constant;
    if (!r.is_equality && r.constant >= 0) {
      // Slack value at x = 0 is `constant` >= 0: negate the row so the
      // slack column has +1 and a non-negative RHS, and make it basic.
      for (std::size_t c = 0; c <= nc; ++c) tab.t[i][c] = -tab.t[i][c];
      tab.basis[i] = first_slack + slack_idx - 1;
      continue;
    }
    // Normalize RHS >= 0, then attach an artificial.
    if (tab.rhs(i).sign() < 0) {
      for (std::size_t c = 0; c <= nc; ++c) tab.t[i][c] = -tab.t[i][c];
    }
    tab.at(i, first_artificial + artificial_idx) = Rational(1);
    tab.basis[i] = first_artificial + artificial_idx;
    ++artificial_idx;
  }

  // Phase 1: minimize the sum of artificials (skipped when none exist).
  if (num_artificials > 0) {
    RatVector costs(nc, Rational(0));
    for (std::size_t a = 0; a < num_artificials; ++a)
      costs[first_artificial + a] = Rational(1);
    tab.set_costs(costs);
    std::vector<bool> allowed(nc, true);
    const bool bounded = tab.optimize(allowed);
    PF_CHECK_MSG(bounded, "phase-1 objective cannot be unbounded");
    // Objective value is -rhs of the cost row.
    if ((-tab.rhs(tab.m)).sign() > 0)
      return Result{Status::kInfeasible, {}, Rational(0)};
    // Pivot remaining artificials (at value 0) out of the basis where
    // possible; rows with no non-artificial entry are redundant and stay
    // (they are all-zero, harmless).
    for (std::size_t r = 0; r < tab.m; ++r) {
      if (tab.basis[r] < first_artificial) continue;
      std::size_t c = 0;
      while (c < first_artificial && tab.at(r, c).is_zero()) ++c;
      if (c < first_artificial) tab.pivot(r, c);
    }
  }

  // Phase 2: original objective; artificial columns are barred.
  {
    RatVector costs(nc, Rational(0));
    for (std::size_t j = 0; j < num_vars_; ++j) {
      costs[col_pos[j]] = objective[j];
      if (col_neg[j] != SIZE_MAX) costs[col_neg[j]] = -objective[j];
    }
    tab.set_costs(costs);
    std::vector<bool> allowed(nc, true);
    for (std::size_t c = first_artificial; c < nc; ++c) allowed[c] = false;
    if (!tab.optimize(allowed)) return Result{Status::kUnbounded, {}, Rational(0)};
  }

  // Extract solution.
  RatVector values(nc, Rational(0));
  for (std::size_t r = 0; r < tab.m; ++r) values[tab.basis[r]] = tab.rhs(r);
  Result res;
  res.status = Status::kOptimal;
  res.point.resize(num_vars_);
  for (std::size_t j = 0; j < num_vars_; ++j) {
    res.point[j] = values[col_pos[j]];
    if (col_neg[j] != SIZE_MAX) res.point[j] -= values[col_neg[j]];
  }
  res.objective = -tab.rhs(tab.m);
  return res;
}

SimplexSolver::Result SimplexSolver::maximize(const RatVector& objective) const {
  RatVector neg(objective.size());
  for (std::size_t i = 0; i < objective.size(); ++i) neg[i] = -objective[i];
  Result r = minimize(neg);
  if (r.status == Status::kOptimal) r.objective = -r.objective;
  return r;
}

SimplexSolver::Result SimplexSolver::feasible_point() const {
  return minimize(RatVector(num_vars_, Rational(0)));
}

}  // namespace pf::lp
