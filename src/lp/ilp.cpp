#include "lp/ilp.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "lp/fastlane.h"
#include "support/budget.h"
#include "support/metrics.h"
#include "support/stats.h"
#include "support/trace.h"

namespace pf::lp {

namespace {

// Per-solve histogram probe: observes the node count and wall time of one
// top-level B&B minimize on every return path (including early exits).
struct IlpSolveProbe {
  long nodes = 0;
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  ~IlpSolveProbe() {
    support::observe(support::Hist::kIlpNodesPerSolve, nodes);
    support::observe(
        support::Hist::kIlpSolveMicros,
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
};

}  // namespace

const char* to_string(IlpStatus s) {
  switch (s) {
    case IlpStatus::kOptimal:
      return "optimal";
    case IlpStatus::kInfeasible:
      return "infeasible";
    case IlpStatus::kUnbounded:
      return "unbounded";
    case IlpStatus::kCapExceeded:
      return "cap-exceeded";
  }
  return "?";
}

IlpProblem::IlpProblem(std::size_t num_vars, std::vector<bool> nonneg)
    : num_vars_(num_vars), nonneg_(std::move(nonneg)) {
  PF_CHECK(nonneg_.size() == num_vars_);
}

IlpProblem IlpProblem::all_nonneg(std::size_t num_vars) {
  return IlpProblem(num_vars, std::vector<bool>(num_vars, true));
}

IlpProblem IlpProblem::all_free(std::size_t num_vars) {
  return IlpProblem(num_vars, std::vector<bool>(num_vars, false));
}

bool IlpProblem::normalize(Row& row) {
  i64 g = 0;
  for (i64 c : row.coeffs) g = gcd(g, c);
  if (g == 0) {
    // 0 . x + constant (>= | ==) 0: constant row, keep as-is; the simplex
    // handles it (constant rows become trivially (in)feasible).
    return !(row.is_equality ? row.constant != 0 : row.constant < 0);
  }
  if (g == 1) return true;
  for (i64& c : row.coeffs) c /= g;
  if (row.is_equality) {
    if (row.constant % g != 0) return false;  // no integer solution
    row.constant /= g;
  } else {
    // coeffs.x >= -constant  ->  (coeffs/g).x >= ceil(-constant / g),
    // i.e. constant' = floor(constant / g) (valid tightening for integers).
    row.constant = floor_div(row.constant, g);
  }
  return true;
}

void IlpProblem::add_inequality(IntVector coeffs, i64 constant) {
  PF_CHECK(coeffs.size() == num_vars_);
  Row row{std::move(coeffs), constant, /*is_equality=*/false};
  if (!normalize(row)) trivially_infeasible_ = true;
  rows_.push_back(std::move(row));
}

void IlpProblem::add_equality(IntVector coeffs, i64 constant) {
  PF_CHECK(coeffs.size() == num_vars_);
  Row row{std::move(coeffs), constant, /*is_equality=*/true};
  if (!normalize(row)) trivially_infeasible_ = true;
  rows_.push_back(std::move(row));
}

void IlpProblem::add_lower_bound(std::size_t v, i64 bound) {
  IntVector c(num_vars_, 0);
  c[v] = 1;
  add_inequality(std::move(c), checked_neg(bound));
}

void IlpProblem::add_upper_bound(std::size_t v, i64 bound) {
  IntVector c(num_vars_, 0);
  c[v] = -1;
  add_inequality(std::move(c), bound);
}

namespace {

struct BranchBound {
  std::size_t var;
  bool is_upper;  // x_var <= value (else x_var >= value)
  i64 value;
};

RatVector to_rat(const IntVector& v) {
  RatVector r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = Rational(v[i]);
  return r;
}

// objective . point in 128 bits; nullopt when the value leaves int64
// (an unusable warm bound, not an error).
std::optional<i64> dot_objective(const IntVector& objective,
                                 const IntVector& point) {
  i128 acc = 0;
  for (std::size_t i = 0; i < objective.size(); ++i)
    acc += static_cast<i128>(objective[i]) * point[i];
  if (acc < static_cast<i128>(INT64_MIN) || acc > static_cast<i128>(INT64_MAX))
    return std::nullopt;
  return static_cast<i64>(acc);
}

}  // namespace

IlpResult IlpProblem::minimize(const IntVector& objective,
                               const IlpOptions& options,
                               std::optional<i64> warm_bound) const {
  PF_CHECK(objective.size() == num_vars_);
  support::count(support::Counter::kIlpSolves);
  // One lp_solve "operation" per top-level minimize: the unit --inject
  // counts. Nodes and pivots below only burn fuel.
  support::budget_op(support::BudgetSite::kLpSolve);
  IlpSolveProbe probe;
  long& nodes = probe.nodes;
  support::TraceSpan span("lp", "ilp_minimize");
  if (span.active()) {
    span.attr("vars", static_cast<i64>(num_vars_));
    span.attr("rows", static_cast<i64>(rows_.size()));
  }
  if (trivially_infeasible_) {
    span.attr("status", "trivially-infeasible");
    return IlpResult{IlpStatus::kInfeasible, {}, 0};
  }

  const bool pure_feasibility =
      std::all_of(objective.begin(), objective.end(),
                  [](i64 c) { return c == 0; });
  const RatVector rat_objective = to_rat(objective);

  // The base LP relaxation is identical for every node; build it once and
  // copy per node (a flat copy of canonical Rationals), adding only the
  // node's branch bounds on top.
  SimplexSolver base(num_vars_, nonneg_);
  for (const Row& row : rows_) {
    RatVector c(num_vars_);
    for (std::size_t j = 0; j < num_vars_; ++j) c[j] = Rational(row.coeffs[j]);
    if (row.is_equality)
      base.add_equality(std::move(c), Rational(row.constant));
    else
      base.add_inequality(std::move(c), Rational(row.constant));
  }

  std::optional<IntVector> incumbent;
  Rational incumbent_obj(0);
  bool cap_hit = false;

  std::vector<std::vector<BranchBound>> stack;
  stack.push_back({});

  while (!stack.empty()) {
    if (++nodes > options.node_cap) {
      cap_hit = true;
      break;
    }
    support::count(support::Counter::kIlpNodes);
    support::budget_charge(support::BudgetSite::kLpSolve);
    const std::vector<BranchBound> bounds = std::move(stack.back());
    stack.pop_back();

    // The node's LP relaxation: base rows + branch bounds.
    SimplexSolver lp = base;
    for (const BranchBound& b : bounds) {
      RatVector c(num_vars_, Rational(0));
      c[b.var] = b.is_upper ? Rational(-1) : Rational(1);
      lp.add_inequality(std::move(c),
                        b.is_upper ? Rational(b.value) : Rational(-b.value));
    }

    const SimplexSolver::Result rel = lp.minimize(rat_objective);
    if (rel.status == Status::kInfeasible) continue;
    if (rel.status == Status::kUnbounded) {
      // Integer unboundedness follows for rational polyhedra that contain
      // an integer point along the ray; polyfuse callers only minimize
      // objectives they know to be bounded, so surface it directly.
      span.attr("status", pf::lp::to_string(IlpStatus::kUnbounded));
      return IlpResult{IlpStatus::kUnbounded, {}, 0};
    }
    // A warm bound is the objective of a known feasible point. The prune
    // is strict (>): nodes that merely tie the bound are still explored,
    // so the first optimal point the cold search finds is also the one
    // found here.
    if (warm_bound && rel.objective > *warm_bound) continue;
    if (incumbent && rel.objective >= incumbent_obj) continue;  // pruned

    // Find a fractional coordinate.
    std::size_t frac = num_vars_;
    for (std::size_t j = 0; j < num_vars_; ++j) {
      if (!rel.point[j].is_integer()) {
        frac = j;
        break;
      }
    }
    if (frac == num_vars_) {
      IntVector point(num_vars_);
      for (std::size_t j = 0; j < num_vars_; ++j)
        point[j] = rel.point[j].as_integer();
      if (!incumbent || rel.objective < incumbent_obj) {
        incumbent = std::move(point);
        incumbent_obj = rel.objective;
      }
      if (pure_feasibility) break;  // any point will do
      continue;
    }

    // Branch: x_frac <= floor(v)  |  x_frac >= floor(v) + 1.
    const i64 fl = rel.point[frac].floor();
    auto down = bounds;
    down.push_back(BranchBound{frac, /*is_upper=*/true, fl});
    auto up = bounds;
    up.push_back(BranchBound{frac, /*is_upper=*/false, checked_add(fl, 1)});
    stack.push_back(std::move(up));
    stack.push_back(std::move(down));
  }

  if (span.active()) span.attr("nodes", static_cast<i64>(nodes));
  if (incumbent) {
    // A cap hit with an incumbent in hand still yields the incumbent, but
    // optimality is not proven; report kCapExceeded so callers can be
    // conservative, unless the search completed.
    IlpResult res;
    res.status = cap_hit ? IlpStatus::kCapExceeded : IlpStatus::kOptimal;
    res.point = *incumbent;
    res.objective = incumbent_obj.as_integer();
    span.attr("status", pf::lp::to_string(res.status));
    return res;
  }
  const IlpStatus status =
      cap_hit ? IlpStatus::kCapExceeded : IlpStatus::kInfeasible;
  span.attr("status", pf::lp::to_string(status));
  return IlpResult{status, {}, 0};
}

IlpResult IlpProblem::maximize(const IntVector& objective,
                               const IlpOptions& options) const {
  IntVector neg(objective.size());
  for (std::size_t i = 0; i < objective.size(); ++i)
    neg[i] = checked_neg(objective[i]);
  IlpResult r = minimize(neg, options);
  if (r.status == IlpStatus::kOptimal) r.objective = checked_neg(r.objective);
  return r;
}

IlpResult IlpProblem::find_point(const IlpOptions& options) const {
  return minimize(IntVector(num_vars_, 0), options);
}

IlpResult IlpProblem::lexmin(const std::vector<IntVector>& objectives,
                             const IlpOptions& options,
                             const IntVector* warm_start) const {
  // Warm point: feasible for the current `work` problem, so its objective
  // value strictly bounds each stage's branch-and-bound. The external
  // point (from the scheduler's previous level) is validated first --
  // structural changes make it stale, never wrong. Stage k's own optimum
  // then becomes the warm point of stage k+1 (it satisfies the pinning
  // equality by construction). All of this is bypassed with the fast lane
  // off so a cold run is maximally plain.
  std::optional<IntVector> warm;
  if (warm_start != nullptr && fastlane_enabled()) {
    if (is_feasible_point(*warm_start)) {
      warm = *warm_start;
      support::count(support::Counter::kFastlaneWarmHits);
    } else {
      support::count(support::Counter::kFastlaneWarmMisses);
    }
  }
  IlpProblem work = *this;
  IlpResult last;
  last.status = IlpStatus::kInfeasible;
  for (std::size_t k = 0; k < objectives.size(); ++k) {
    std::optional<i64> bound;
    if (warm) bound = dot_objective(objectives[k], *warm);
    last = work.minimize(objectives[k], options, bound);
    if (last.status != IlpStatus::kOptimal) return last;
    if (k + 1 < objectives.size())
      work.add_equality(objectives[k], checked_neg(last.objective));
    if (fastlane_enabled()) warm = last.point;
  }
  if (objectives.empty()) last = find_point(options);
  return last;
}

bool IlpProblem::is_feasible_point(const IntVector& point) const {
  if (point.size() != num_vars_ || trivially_infeasible_) return false;
  for (std::size_t j = 0; j < num_vars_; ++j)
    if (nonneg_[j] && point[j] < 0) return false;
  for (const Row& row : rows_) {
    i128 acc = row.constant;
    for (std::size_t j = 0; j < num_vars_; ++j)
      acc += static_cast<i128>(row.coeffs[j]) * point[j];
    if (row.is_equality ? acc != 0 : acc < 0) return false;
  }
  return true;
}

bool IlpProblem::proven_empty(const IlpOptions& options) const {
  return find_point(options).status == IlpStatus::kInfeasible;
}

std::string IlpProblem::to_string() const {
  std::ostringstream os;
  for (const Row& r : rows_) {
    for (std::size_t j = 0; j < r.coeffs.size(); ++j)
      if (r.coeffs[j] != 0) os << (r.coeffs[j] > 0 ? "+" : "") << r.coeffs[j] << "x" << j << " ";
    os << (r.is_equality ? "== " : ">= ") << -r.constant << "\n";
  }
  return os.str();
}

}  // namespace pf::lp
