// The fusion models compared in the paper (Table 1), as FusionPolicy
// implementations for the Pluto-style scheduler:
//
//   wisefuse   -- the paper's contribution. Pre-fusion schedule from
//                 Algorithm 1 (reuse- and dimensionality-aware, program
//                 order, RAR-aware), dimensionality-based cuts, plus
//                 Algorithm 2 (outer-parallelism enforcement).
//   smartfuse  -- Pluto's default: DFS/topological SCC order, cut between
//                 SCCs of different dimensionality when stuck, escalate to
//                 full distribution.
//   nofuse     -- every SCC in its own loop nest from the start.
//   maxfuse    -- fuse greedily; when stuck, insert the smallest cut (one
//                 boundary) that satisfies some dependence.
//
// Wisefuse's Algorithm 1 heuristics can be individually disabled through
// WisefuseOptions -- that is what the ablation benches sweep.
#pragma once

#include <memory>
#include <string>

#include "sched/pluto.h"
#include "sched/policy.h"

namespace pf::fusion {

enum class FusionModel { kWisefuse, kSmartfuse, kNofuse, kMaxfuse };

const char* to_string(FusionModel m);

/// Ablation switches for wisefuse (paper Section 4.1 heuristics).
struct WisefuseOptions {
  /// Consider input (RAR) dependences as reuse when ordering SCCs.
  bool use_rar = true;
  /// Heuristic 1: only order SCCs consecutively if dimensionality matches.
  bool require_same_dim = true;
  /// Heuristic 2: scan candidates in original program order (false falls
  /// back to the DFS/topological order, i.e. no reordering at all).
  bool reorder = true;
  /// Algorithm 2: cut to preserve outer-level parallelism.
  bool enforce_outer_parallelism = true;
};

/// Quantitative profitability feed for the fusion remark channel. When
/// an oracle is installed (the --analyze pass adapts its LocalityReport
/// into one), wisefuse's per-candidate decision remarks carry the exact
/// number of distinct array cells the candidate shares with the fusable
/// set -- *why* fusion pays -- alongside the reuse-pair score the
/// heuristic itself uses. Purely observational: the oracle never changes
/// a fusion decision, so schedules are identical with or without it.
class ProfitabilityOracle {
 public:
  virtual ~ProfitabilityOracle() = default;
  /// Distinct cells statements `s` and `t` both touch; -1 when unknown.
  virtual i64 shared_cells(std::size_t s, std::size_t t) const = 0;
};

/// Install (or clear, with nullptr) the process-wide oracle consulted by
/// the wisefuse candidate remarks. Returns the previous oracle so scoped
/// installers can restore it.
const ProfitabilityOracle* set_profitability_oracle(
    const ProfitabilityOracle* oracle);
const ProfitabilityOracle* profitability_oracle();

/// Create a policy implementing the given model.
std::unique_ptr<sched::FusionPolicy> make_policy(FusionModel m);

/// Wisefuse with explicit (possibly ablated) options.
std::unique_ptr<sched::FusionPolicy> make_wisefuse(const WisefuseOptions& o);

/// compute_schedule with the budget graceful-degradation chain: when a
/// fusion model's own work (the fusion_model budget site) runs out of
/// fuel or hits an injected fault, fall back along
///   wisefuse -> smartfuse -> nofuse,   maxfuse -> smartfuse -> nofuse,
/// and, should every model fail, to the always-legal identity schedule.
/// Other budget faults (lp_solve, fme_project, pluto_level) are already
/// recovered inside the scheduler and never reach the chain. Each
/// downgrade emits a "budget" remark and bumps budget_downgrades. With no
/// budget installed this is exactly make_policy + sched::compute_schedule.
/// `used` (optional) receives the model that produced the schedule, or is
/// left untouched on the identity fallback.
sched::Schedule compute_schedule_degrading(
    const ir::Scop& scop, const ddg::DependenceGraph& dg, FusionModel model,
    const sched::SchedulerOptions& options = {}, FusionModel* used = nullptr);

/// The pre-fusion schedule of wisefuse's Algorithm 1, exposed for tests
/// and Figure-5 style reporting: returns position -> scc id.
std::vector<std::size_t> wisefuse_prefusion_order(
    const ir::Scop& scop, const ddg::DependenceGraph& dg,
    const ddg::SccResult& sccs, const WisefuseOptions& options = {});

}  // namespace pf::fusion
