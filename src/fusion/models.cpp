#include "fusion/models.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "sched/analysis.h"
#include "support/budget.h"
#include "support/stats.h"
#include "support/trace.h"

namespace pf::fusion {

namespace {
// Observational only (see models.h): consulted when building candidate
// remarks, never when deciding fusion.
const ProfitabilityOracle* g_profitability_oracle = nullptr;
}  // namespace

const ProfitabilityOracle* set_profitability_oracle(
    const ProfitabilityOracle* oracle) {
  const ProfitabilityOracle* previous = g_profitability_oracle;
  g_profitability_oracle = oracle;
  return previous;
}

const ProfitabilityOracle* profitability_oracle() {
  return g_profitability_oracle;
}

const char* to_string(FusionModel m) {
  switch (m) {
    case FusionModel::kWisefuse:
      return "wisefuse";
    case FusionModel::kSmartfuse:
      return "smartfuse";
    case FusionModel::kNofuse:
      return "nofuse";
    case FusionModel::kMaxfuse:
      return "maxfuse";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Algorithm 1: the wisefuse pre-fusion schedule.
// ---------------------------------------------------------------------------

std::vector<std::size_t> wisefuse_prefusion_order(
    const ir::Scop& scop, const ddg::DependenceGraph& dg,
    const ddg::SccResult& sccs, const WisefuseOptions& options) {
  support::TraceSpan span("fusion", "wisefuse_prefusion_order");
  if (span.active()) span.attr("sccs", static_cast<i64>(sccs.num_sccs()));
  // One fusion_model operation per pre-fusion-order computation (the
  // --inject unit); Algorithm 1's statement scan burns fuel below.
  support::budget_op(support::BudgetSite::kFusionModel);
  support::budget_charge(support::BudgetSite::kFusionModel);
  const std::size_t n = scop.num_statements();
  if (!options.reorder) {
    // Heuristic 2 disabled entirely: keep the DFS/topological order.
    std::vector<std::size_t> identity(sccs.num_sccs());
    std::iota(identity.begin(), identity.end(), 0);
    return identity;
  }

  auto reuse = [&](std::size_t a, std::size_t b) {
    if (options.use_rar) return dg.has_reuse_edge(a, b);
    return dg.has_edge(a, b) || dg.has_edge(b, a);
  };

  std::vector<bool> visited(n, false);
  std::vector<std::size_t> order;  // position -> scc id
  order.reserve(sccs.num_sccs());

  auto scc_of = [&](std::size_t s) {
    return static_cast<std::size_t>(sccs.scc_of[s]);
  };

  // SCC_t's precedence is satisfiable if no statement of it depends on an
  // unvisited statement outside the SCC.
  auto precedence_ok = [&](std::size_t scc) {
    for (const std::size_t t : sccs.members[scc]) {
      for (std::size_t sp = 0; sp < n; ++sp) {
        if (visited[sp] || scc_of(sp) == scc) continue;
        if (dg.has_edge(sp, t)) return false;
      }
    }
    return true;
  };

  auto visit_scc = [&](std::size_t scc, std::vector<std::size_t>* fusable) {
    for (const std::size_t t : sccs.members[scc]) {
      visited[t] = true;
      if (fusable != nullptr) fusable->push_back(t);
    }
    order.push_back(scc);
  };

  // Emit every unvisited predecessor SCC of `scc` (recursively) before
  // `scc` itself. Carried dependences can run from a textually later
  // statement to an earlier one, so a program-order seed may have
  // unvisited ancestors; seeding it first would violate the precedence
  // constraint.
  const std::function<void(std::size_t)> visit_with_preds =
      [&](std::size_t scc) {
        for (;;) {
          std::size_t pred = SIZE_MAX;
          for (std::size_t sp = 0; sp < n && pred == SIZE_MAX; ++sp) {
            if (visited[sp] || scc_of(sp) == scc) continue;
            for (const std::size_t t : sccs.members[scc]) {
              if (dg.has_edge(sp, t)) {
                pred = scc_of(sp);
                break;
              }
            }
          }
          if (pred == SIZE_MAX) break;
          visit_with_preds(pred);
        }
        if (!visited[sccs.members[scc].front()]) visit_scc(scc, nullptr);
      };

  // Walk statements in program order (Heuristic 2).
  for (std::size_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    support::budget_charge(support::BudgetSite::kFusionModel);
    std::vector<std::size_t> fusable;
    if (!precedence_ok(scc_of(s))) {
      // Flush unvisited ancestors (each as its own pre-fusion entry),
      // then seed the group from s as usual.
      const std::size_t seed_scc = scc_of(s);
      for (;;) {
        std::size_t pred = SIZE_MAX;
        for (std::size_t sp = 0; sp < n && pred == SIZE_MAX; ++sp) {
          if (visited[sp] || scc_of(sp) == seed_scc) continue;
          for (const std::size_t t : sccs.members[seed_scc]) {
            if (dg.has_edge(sp, t)) {
              pred = scc_of(sp);
              break;
            }
          }
        }
        if (pred == SIZE_MAX) break;
        visit_with_preds(pred);
      }
    }
    visit_scc(scc_of(s), &fusable);

    // Greedily pull in unvisited same-dimensionality statements (whole
    // SCCs) that have reuse with the fusable set and whose precedence
    // constraint is satisfied -- again in program order. With the remark
    // channel on, every candidate gets a decision remark: its reuse score
    // (number of reusing statement pairs against the fusable set) and the
    // cost-model verdict.
    const bool explain = support::Tracer::remarks_on();
    const std::size_t dim_s = scop.statement(s).dim();
    if (explain)
      support::remark("fusion", "seed fusion group",
                      {{"seed", scop.statement(s).name()},
                       {"dim", std::to_string(dim_s)}});
    for (std::size_t t = 0; t < n; ++t) {
      if (visited[t]) continue;
      const std::size_t scc_t = scc_of(t);
      auto verdict = [&](const char* v, std::size_t reuse_pairs) {
        if (!explain) return;
        std::vector<std::pair<std::string, std::string>> attrs = {
            {"candidate", scop.statement(t).name()},
            {"seed", scop.statement(s).name()},
            {"candidate_dim", std::to_string(scop.statement(t).dim())},
            {"reuse_score", std::to_string(reuse_pairs)},
            {"verdict", v}};
        // With a profitability oracle installed (--analyze), quantify the
        // candidate: exact distinct cells shared between the fusable set
        // and SCC_t, plus the candidate's own self-reuse (cells two
        // distinct instances of one statement revisit -- the accumulator
        // of a reduction) -- the data fusion would keep hot.
        if (const ProfitabilityOracle* oracle = profitability_oracle()) {
          i64 shared = 0;
          bool unknown = false;
          const auto add = [&](i64 cells) {
            if (cells < 0)
              unknown = true;
            else
              shared += cells;
          };
          for (const std::size_t i : fusable)
            for (const std::size_t j : sccs.members[scc_t])
              add(oracle->shared_cells(i, j));
          for (const std::size_t j : sccs.members[scc_t])
            add(oracle->shared_cells(j, j));
          attrs.emplace_back("shared_cells",
                             unknown ? "unknown" : std::to_string(shared));
        }
        support::remark("fusion", "fusion candidate", attrs);
      };
      if (options.require_same_dim && scop.statement(t).dim() != dim_s) {
        verdict("cut: dimensionality mismatch", 0);
        continue;
      }
      // Reuse test: some fusable statement shares a (RAR or real)
      // dependence with some statement of SCC_t. The explain path counts
      // every reusing pair (the reuse score); the fast path stops at the
      // first.
      std::size_t reuse_pairs = 0;
      for (const std::size_t i : fusable) {
        for (const std::size_t j : sccs.members[scc_t]) {
          if (reuse(i, j)) {
            ++reuse_pairs;
            if (!explain) break;
          }
        }
        if (reuse_pairs != 0 && !explain) break;
      }
      if (reuse_pairs == 0) {
        verdict("cut: no reuse", 0);
        continue;
      }
      if (!precedence_ok(scc_t)) {
        verdict("cut: precedence violated", reuse_pairs);
        continue;
      }
      verdict("fused", reuse_pairs);
      visit_scc(scc_t, &fusable);
    }
  }
  PF_CHECK(order.size() == sccs.num_sccs());
  return order;
}

// ---------------------------------------------------------------------------
// Policies.
// ---------------------------------------------------------------------------

namespace {

// Pluto's pre-fusion schedule: the order Kosaraju's DFS discovered the
// SCCs in. It follows dependence chains depth-first, interleaving
// dimensionalities -- the suboptimality the paper's Section 2.3 calls out.
std::vector<std::size_t> dfs_order(const ddg::SccResult& sccs) {
  if (sccs.discovery_order.size() == sccs.num_sccs())
    return sccs.discovery_order;
  std::vector<std::size_t> order(sccs.num_sccs());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

class SmartfusePolicy final : public sched::FusionPolicy {
 public:
  std::string name() const override { return "smartfuse"; }
  std::vector<std::size_t> prefusion_order(
      const ir::Scop&, const ddg::DependenceGraph&,
      const ddg::SccResult& sccs) override {
    support::budget_op(support::BudgetSite::kFusionModel);
    support::budget_charge(support::BudgetSite::kFusionModel);
    return dfs_order(sccs);
  }
  std::vector<i64> cut_on_infeasible(const sched::CutContext& ctx) override {
    return sched::cut_dim_based(ctx);
  }
};

class NofusePolicy final : public sched::FusionPolicy {
 public:
  std::string name() const override { return "nofuse"; }
  std::vector<std::size_t> prefusion_order(
      const ir::Scop&, const ddg::DependenceGraph&,
      const ddg::SccResult& sccs) override {
    // Canonical ids are already a program-order-respecting topological
    // order; nofuse keeps the nests in source order like the paper's
    // figures.
    support::budget_op(support::BudgetSite::kFusionModel);
    support::budget_charge(support::BudgetSite::kFusionModel);
    std::vector<std::size_t> order(sccs.num_sccs());
    std::iota(order.begin(), order.end(), 0);
    return order;
  }
  std::vector<i64> initial_cut(const sched::CutContext& ctx) override {
    return sched::cut_all(ctx.order->size());
  }
  std::vector<i64> cut_on_infeasible(const sched::CutContext& ctx) override {
    return sched::cut_all(ctx.order->size());
  }
};

class MaxfusePolicy final : public sched::FusionPolicy {
 public:
  std::string name() const override { return "maxfuse"; }
  std::vector<std::size_t> prefusion_order(
      const ir::Scop&, const ddg::DependenceGraph&,
      const ddg::SccResult& sccs) override {
    support::budget_op(support::BudgetSite::kFusionModel);
    support::budget_charge(support::BudgetSite::kFusionModel);
    return dfs_order(sccs);
  }
  std::vector<i64> cut_on_infeasible(const sched::CutContext& ctx) override {
    // Smallest cut that makes progress: a single boundary separating at
    // least one active dependence.
    const std::size_t n = ctx.order->size();
    for (std::size_t b = 1; b < n; ++b) {
      const std::vector<i64> values = sched::cut_at_boundary(n, b);
      if (satisfies_some(ctx, values)) return values;
    }
    return sched::cut_all(n);  // degenerate; scheduler re-validates
  }

 private:
  static bool satisfies_some(const sched::CutContext& ctx,
                             const std::vector<i64>& values) {
    std::vector<std::size_t> pos_of_scc(ctx.order->size());
    for (std::size_t p = 0; p < ctx.order->size(); ++p)
      pos_of_scc[(*ctx.order)[p]] = p;
    for (const std::size_t dep_idx : *ctx.active_deps) {
      const ddg::Dependence& d = ctx.dg->deps()[dep_idx];
      const i64 vs = values[pos_of_scc[static_cast<std::size_t>(
          ctx.sccs->scc_of[d.src])]];
      const i64 vt = values[pos_of_scc[static_cast<std::size_t>(
          ctx.sccs->scc_of[d.dst])]];
      if (vs < vt) return true;
    }
    return false;
  }
};

class WisefusePolicy final : public sched::FusionPolicy {
 public:
  explicit WisefusePolicy(const WisefuseOptions& options)
      : options_(options) {}

  std::string name() const override { return "wisefuse"; }
  std::vector<std::size_t> prefusion_order(
      const ir::Scop& scop, const ddg::DependenceGraph& dg,
      const ddg::SccResult& sccs) override {
    return wisefuse_prefusion_order(scop, dg, sccs, options_);
  }
  std::vector<i64> cut_on_infeasible(const sched::CutContext& ctx) override {
    return sched::cut_dim_based(ctx);
  }
  bool enforce_outer_parallelism() const override {
    return options_.enforce_outer_parallelism;
  }

 private:
  WisefuseOptions options_;
};

}  // namespace

std::unique_ptr<sched::FusionPolicy> make_policy(FusionModel m) {
  switch (m) {
    case FusionModel::kWisefuse:
      return std::make_unique<WisefusePolicy>(WisefuseOptions{});
    case FusionModel::kSmartfuse:
      return std::make_unique<SmartfusePolicy>();
    case FusionModel::kNofuse:
      return std::make_unique<NofusePolicy>();
    case FusionModel::kMaxfuse:
      return std::make_unique<MaxfusePolicy>();
  }
  PF_FAIL("unknown fusion model");
}

std::unique_ptr<sched::FusionPolicy> make_wisefuse(const WisefuseOptions& o) {
  return std::make_unique<WisefusePolicy>(o);
}

sched::Schedule compute_schedule_degrading(const ir::Scop& scop,
                                           const ddg::DependenceGraph& dg,
                                           FusionModel model,
                                           const sched::SchedulerOptions& options,
                                           FusionModel* used) {
  // Cheaper models ask strictly less of the solver stack, so walking down
  // the chain converges; nofuse needs no cross-nest reasoning at all.
  std::vector<FusionModel> chain;
  switch (model) {
    case FusionModel::kWisefuse:
      chain = {FusionModel::kWisefuse, FusionModel::kSmartfuse,
               FusionModel::kNofuse};
      break;
    case FusionModel::kMaxfuse:
      chain = {FusionModel::kMaxfuse, FusionModel::kSmartfuse,
               FusionModel::kNofuse};
      break;
    case FusionModel::kSmartfuse:
      chain = {FusionModel::kSmartfuse, FusionModel::kNofuse};
      break;
    case FusionModel::kNofuse:
      chain = {FusionModel::kNofuse};
      break;
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    try {
      const std::unique_ptr<sched::FusionPolicy> policy =
          make_policy(chain[i]);
      sched::Schedule sch = sched::compute_schedule(scop, dg, *policy, options);
      if (used != nullptr) *used = chain[i];
      return sch;
    } catch (const support::BudgetExceeded& e) {
      // Only fusion_model faults escape compute_schedule; every other
      // site already degraded inside the scheduler.
      support::count(support::Counter::kBudgetDowngrades);
      support::remark(
          "budget", "fusion model degraded",
          {{"from", to_string(chain[i])},
           {"to", i + 1 < chain.size() ? to_string(chain[i + 1]) : "identity"},
           {"site", e.site_name()},
           {"cause", e.cause()}});
    }
  }
  // Every model failed (e.g. zero fuel at the fusion_model site): the
  // original statement order is always legal.
  support::BudgetSuspend suspend;
  sched::Schedule fallback = sched::identity_schedule(scop);
  sched::annotate_dependences(fallback, dg, options.ilp);
  return fallback;
}

}  // namespace pf::fusion
