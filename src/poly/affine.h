// Affine expressions and constraints over a positional variable space.
//
// An AffineExpr is coeffs . x + constant over dims x_0..x_{d-1}. Which
// variable each position means (iterator, parameter, schedule dimension)
// is a convention of the layer above; poly itself is positional.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "support/intmath.h"
#include "support/linalg.h"

namespace pf::poly {

class AffineExpr {
 public:
  AffineExpr() : constant_(0) {}
  explicit AffineExpr(std::size_t dims, i64 constant = 0)
      : coeffs_(dims, 0), constant_(constant) {}
  AffineExpr(IntVector coeffs, i64 constant)
      : coeffs_(std::move(coeffs)), constant_(constant) {}

  /// The expression "x_k" in a d-dimensional space.
  static AffineExpr var(std::size_t dims, std::size_t k) {
    AffineExpr e(dims);
    e.coeffs_[k] = 1;
    return e;
  }
  /// The constant expression.
  static AffineExpr constant(std::size_t dims, i64 value) {
    return AffineExpr(dims, value);
  }

  std::size_t dims() const { return coeffs_.size(); }
  i64 coeff(std::size_t k) const { return coeffs_[k]; }
  void set_coeff(std::size_t k, i64 v) { coeffs_[k] = v; }
  i64 const_term() const { return constant_; }
  void set_const_term(i64 v) { constant_ = v; }
  const IntVector& coeffs() const { return coeffs_; }

  bool is_constant() const;
  /// True if all coefficients and the constant are zero.
  bool is_zero() const;

  AffineExpr operator+(const AffineExpr& o) const;
  AffineExpr operator-(const AffineExpr& o) const;
  AffineExpr operator-() const;
  AffineExpr operator*(i64 s) const;
  AffineExpr& operator+=(const AffineExpr& o) { return *this = *this + o; }
  AffineExpr& operator-=(const AffineExpr& o) { return *this = *this - o; }

  AffineExpr plus_const(i64 c) const;

  bool operator==(const AffineExpr& o) const {
    return coeffs_ == o.coeffs_ && constant_ == o.constant_;
  }

  /// Value at an integer point (point.size() == dims()).
  i64 eval(const IntVector& point) const;
  Rational eval_rat(const RatVector& point) const;

  /// Re-embed into a larger space: old dim i becomes new dim map[i].
  AffineExpr remap(std::size_t new_dims,
                   const std::vector<std::size_t>& map) const;

  /// Insert `count` zero-coefficient dims starting at position `pos`.
  AffineExpr insert_dims(std::size_t pos, std::size_t count) const;

  /// Drop dims listed in `remove` (must have zero coefficient unless
  /// `allow_nonzero`); remaining dims keep their order.
  AffineExpr drop_dims(const std::vector<bool>& remove) const;

  std::string to_string(const std::vector<std::string>& names = {}) const;

 private:
  IntVector coeffs_;
  i64 constant_;
};

/// Hash over (coeffs, constant); equal expressions hash equal.
inline std::size_t hash_value(const AffineExpr& e) {
  std::size_t seed = std::hash<std::size_t>{}(e.dims());
  for (std::size_t k = 0; k < e.dims(); ++k)
    hash_combine(seed, std::hash<i64>{}(e.coeff(k)));
  hash_combine(seed, std::hash<i64>{}(e.const_term()));
  return seed;
}

/// expr >= 0 (inequality) or expr == 0 (equality).
struct Constraint {
  AffineExpr expr;
  bool is_equality = false;

  static Constraint ge0(AffineExpr e) { return Constraint{std::move(e), false}; }
  static Constraint eq0(AffineExpr e) { return Constraint{std::move(e), true}; }

  /// a >= b, i.e. a - b >= 0.
  static Constraint ge(const AffineExpr& a, const AffineExpr& b) {
    return ge0(a - b);
  }
  /// a <= b.
  static Constraint le(const AffineExpr& a, const AffineExpr& b) {
    return ge0(b - a);
  }
  /// a == b.
  static Constraint eq(const AffineExpr& a, const AffineExpr& b) {
    return eq0(a - b);
  }

  bool operator==(const Constraint& o) const {
    return is_equality == o.is_equality && expr == o.expr;
  }

  std::string to_string(const std::vector<std::string>& names = {}) const;
};

/// Hash over (expr, is_equality); equal constraints hash equal.
inline std::size_t hash_value(const Constraint& c) {
  std::size_t seed = hash_value(c.expr);
  hash_combine(seed, std::hash<bool>{}(c.is_equality));
  return seed;
}

}  // namespace pf::poly
