#include "poly/affine.h"

#include <algorithm>
#include <sstream>

namespace pf::poly {

bool AffineExpr::is_constant() const {
  return std::all_of(coeffs_.begin(), coeffs_.end(),
                     [](i64 c) { return c == 0; });
}

bool AffineExpr::is_zero() const { return is_constant() && constant_ == 0; }

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  PF_CHECK_MSG(dims() == o.dims(), "adding affine exprs of different spaces");
  AffineExpr r(dims());
  for (std::size_t i = 0; i < dims(); ++i)
    r.coeffs_[i] = checked_add(coeffs_[i], o.coeffs_[i]);
  r.constant_ = checked_add(constant_, o.constant_);
  return r;
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  return *this + (-o);
}

AffineExpr AffineExpr::operator-() const {
  AffineExpr r(dims());
  for (std::size_t i = 0; i < dims(); ++i) r.coeffs_[i] = checked_neg(coeffs_[i]);
  r.constant_ = checked_neg(constant_);
  return r;
}

AffineExpr AffineExpr::operator*(i64 s) const {
  AffineExpr r(dims());
  for (std::size_t i = 0; i < dims(); ++i) r.coeffs_[i] = checked_mul(coeffs_[i], s);
  r.constant_ = checked_mul(constant_, s);
  return r;
}

AffineExpr AffineExpr::plus_const(i64 c) const {
  AffineExpr r = *this;
  r.constant_ = checked_add(r.constant_, c);
  return r;
}

i64 AffineExpr::eval(const IntVector& point) const {
  PF_CHECK(point.size() == dims());
  i128 acc = constant_;
  for (std::size_t i = 0; i < dims(); ++i)
    acc += static_cast<i128>(coeffs_[i]) * static_cast<i128>(point[i]);
  return narrow_i128(acc);
}

Rational AffineExpr::eval_rat(const RatVector& point) const {
  PF_CHECK(point.size() == dims());
  Rational acc(constant_);
  for (std::size_t i = 0; i < dims(); ++i)
    acc += Rational(coeffs_[i]) * point[i];
  return acc;
}

AffineExpr AffineExpr::remap(std::size_t new_dims,
                             const std::vector<std::size_t>& map) const {
  PF_CHECK(map.size() == dims());
  AffineExpr r(new_dims, constant_);
  for (std::size_t i = 0; i < dims(); ++i) {
    if (coeffs_[i] == 0) continue;
    PF_CHECK(map[i] < new_dims);
    r.coeffs_[map[i]] = checked_add(r.coeffs_[map[i]], coeffs_[i]);
  }
  return r;
}

AffineExpr AffineExpr::insert_dims(std::size_t pos, std::size_t count) const {
  PF_CHECK(pos <= dims());
  AffineExpr r(dims() + count, constant_);
  for (std::size_t i = 0; i < dims(); ++i)
    r.coeffs_[i < pos ? i : i + count] = coeffs_[i];
  return r;
}

AffineExpr AffineExpr::drop_dims(const std::vector<bool>& remove) const {
  PF_CHECK(remove.size() == dims());
  IntVector kept;
  for (std::size_t i = 0; i < dims(); ++i) {
    if (remove[i]) {
      PF_CHECK_MSG(coeffs_[i] == 0,
                   "dropping dim " << i << " with nonzero coefficient");
    } else {
      kept.push_back(coeffs_[i]);
    }
  }
  return AffineExpr(std::move(kept), constant_);
}

std::string AffineExpr::to_string(
    const std::vector<std::string>& names) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < dims(); ++i) {
    const i64 c = coeffs_[i];
    if (c == 0) continue;
    const std::string name =
        i < names.size() ? names[i] : ("x" + std::to_string(i));
    if (first) {
      if (c == -1)
        os << "-";
      else if (c != 1)
        os << c << "*";
      os << name;
      first = false;
    } else {
      os << (c > 0 ? " + " : " - ");
      const i64 a = abs_i64(c);
      if (a != 1) os << a << "*";
      os << name;
    }
  }
  if (first) {
    os << constant_;
  } else if (constant_ != 0) {
    os << (constant_ > 0 ? " + " : " - ") << abs_i64(constant_);
  }
  return os.str();
}

std::string Constraint::to_string(
    const std::vector<std::string>& names) const {
  return expr.to_string(names) + (is_equality ? " == 0" : " >= 0");
}

}  // namespace pf::poly
