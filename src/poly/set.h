// IntegerSet: a conjunction of affine constraints over a positional space,
// interpreted over the integers.
//
// This is polyfuse's polyhedron type: iteration domains, dependence
// polyhedra and transformed-domain projections are all IntegerSets.
// Supported operations:
//  * integer emptiness / min / max of affine forms (exact, via the
//    branch-and-bound ILP),
//  * Fourier-Motzkin elimination (rational projection -- an
//    overapproximation of the integer projection, which is the standard,
//    safe choice for loop-bound generation),
//  * LP-based redundant-constraint removal (keeps emitted bounds tidy).
//
// Solve cache. is_empty / integer_min / integer_max are memoized in a
// process-wide, sharded, content-addressed table keyed by the canonical
// (gcd-normalized, sorted) constraint system plus the objective and the
// ILP node cap. The Pluto level loop and FME redundancy elimination
// re-test many structurally identical systems; a hit skips the whole
// branch-and-bound search. Keys compare full canonical content (the hash
// only picks the shard/bucket), so a hit is always exact -- results are
// byte-identical with the cache on or off, and safe under concurrency.
//
// When support/diskcache is configured, an in-memory miss additionally
// consults the persistent on-disk store (domain "solve"), and computed
// results are committed there, so solve work survives process restarts.
// Budget-limited solves bypass both layers (see is_empty below), and the
// disk layer's run-id guard keeps its hits deterministic within one run.
#pragma once

#include <string>
#include <vector>

#include "lp/ilp.h"
#include "poly/affine.h"

namespace pf::poly {

/// Enable/disable the process-wide polyhedral solve cache (default on).
void set_solve_cache_enabled(bool enabled);
bool solve_cache_enabled();
/// Drop every cached solve result (e.g. between bench repetitions).
/// Clears the calling thread's private scope cache too, if one is active.
void clear_solve_cache();

/// RAII: give the calling thread private in-memory solve and count
/// caches, isolated from the process-wide sharded tables, until the scope
/// dies. The batch driver wraps each compile request in one so (a) a
/// request's cache metrics depend only on its own work -- never on what a
/// concurrently running sibling happened to memoize first -- and (b) a
/// long batch's memoization footprint is freed request by request instead
/// of accumulating for the process lifetime. The persistent on-disk cache
/// (support/diskcache) is still consulted on misses: its run-id guard
/// makes disk hits a property of the directory state at startup, which
/// keeps them deterministic at any --jobs. Scopes nest; the previous
/// cache (private or process-wide) is restored on destruction.
class SolveCacheScope {
 public:
  SolveCacheScope();
  ~SolveCacheScope();
  SolveCacheScope(const SolveCacheScope&) = delete;
  SolveCacheScope& operator=(const SolveCacheScope&) = delete;

 private:
  void* previous_solve_;
  void* previous_count_;
};

class IntegerSet {
 public:
  explicit IntegerSet(std::size_t dims) : dims_(dims) {}

  static IntegerSet universe(std::size_t dims) { return IntegerSet(dims); }

  std::size_t dims() const { return dims_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  std::size_t num_constraints() const { return constraints_.size(); }

  /// Add a constraint (gcd-normalized; equalities unsatisfiable over the
  /// integers mark the set trivially empty). Exact duplicates are dropped.
  void add_constraint(Constraint c);
  /// Intersect with another set over the same space.
  void intersect(const IntegerSet& other);

  /// Syntactically empty (a normalization proved emptiness without ILP).
  bool trivially_empty() const { return trivially_empty_; }

  /// True if the set provably contains no integer point. A capped ILP
  /// search returns false ("may be non-empty") -- the conservative answer
  /// for dependence analysis.
  bool is_empty(const lp::IlpOptions& options = {}) const;

  /// Membership test for an integer point.
  bool contains(const IntVector& point) const;

  /// Any integer point, if one is found.
  std::optional<IntVector> sample_point(const lp::IlpOptions& options = {}) const;

  /// Result of an integer optimization over the set.
  struct Opt {
    enum Kind { kOk, kEmpty, kUnbounded, kUnknown } kind = kEmpty;
    i64 value = 0;  // valid iff kind == kOk
  };
  Opt integer_min(const AffineExpr& e, const lp::IlpOptions& options = {}) const;
  Opt integer_max(const AffineExpr& e, const lp::IlpOptions& options = {}) const;

  /// Fourier-Motzkin eliminate every dim with remove[d] == true; the
  /// result's dims are the remaining ones in original order.
  IntegerSet eliminate_dims(const std::vector<bool>& remove) const;
  IntegerSet eliminate_dim(std::size_t k) const;
  /// Keep only dims [0, n): eliminate the rest.
  IntegerSet project_onto_prefix(std::size_t n) const;

  /// Insert `count` unconstrained dims at position `pos`.
  IntegerSet insert_dims(std::size_t pos, std::size_t count) const;

  /// Remove inequalities implied (over the rationals) by the rest.
  void remove_redundant();

  /// Lower the set onto an ILP problem (all variables free integers).
  lp::IlpProblem to_ilp() const;

  /// Order-independent hash of the canonical constraint system: two sets
  /// holding the same (already gcd-normalized) constraints hash equal
  /// regardless of insertion order.
  std::size_t hash_value() const;

  std::string to_string(const std::vector<std::string>& names = {}) const;

 private:
  // Canonical trivially-empty representation: the flag set and the
  // constraint list cleared, so every route to emptiness (contradictory
  // add_constraint, intersect with an empty set, FME signalling a
  // contradiction) leaves the same state and equal sets hash equal.
  void mark_trivially_empty() {
    trivially_empty_ = true;
    constraints_.clear();
  }
  // Returns false if the normalized constraint is unsatisfiable.
  bool normalize(Constraint& c) const;
  // integer_min without consulting the solve cache.
  Opt integer_min_uncached(const AffineExpr& e,
                           const lp::IlpOptions& options) const;
  // FM elimination of a single dim, in place on the constraint list
  // (column k becomes all-zero; caller drops it).
  static void fm_eliminate_column(std::vector<Constraint>& cs, std::size_t k,
                                  bool* trivially_empty);
  static void dedupe(std::vector<Constraint>& cs);

  std::size_t dims_;
  std::vector<Constraint> constraints_;
  bool trivially_empty_ = false;
};

}  // namespace pf::poly
