#include "poly/set.h"

#include <algorithm>
#include <sstream>

#include "lp/simplex.h"

namespace pf::poly {

bool IntegerSet::normalize(Constraint& c) const {
  PF_CHECK_MSG(c.expr.dims() == dims_, "constraint space mismatch: "
                                           << c.expr.dims() << " vs " << dims_);
  i64 g = 0;
  for (i64 v : c.expr.coeffs()) g = gcd(g, v);
  if (g == 0) {
    // Constant constraint.
    if (c.is_equality) return c.expr.const_term() == 0;
    return c.expr.const_term() >= 0;
  }
  if (g > 1) {
    AffineExpr e(dims_);
    for (std::size_t i = 0; i < dims_; ++i) e.set_coeff(i, c.expr.coeff(i) / g);
    if (c.is_equality) {
      if (c.expr.const_term() % g != 0) return false;
      e.set_const_term(c.expr.const_term() / g);
    } else {
      e.set_const_term(floor_div(c.expr.const_term(), g));
    }
    c.expr = e;
  }
  return true;
}

void IntegerSet::add_constraint(Constraint c) {
  if (trivially_empty_) return;
  i64 g = 0;
  for (i64 v : c.expr.coeffs()) g = gcd(g, v);
  if (g == 0) {
    // Constant: either trivially true (drop) or proves emptiness.
    const bool ok = c.is_equality ? c.expr.const_term() == 0
                                  : c.expr.const_term() >= 0;
    if (!ok) trivially_empty_ = true;
    return;
  }
  if (!normalize(c)) {
    trivially_empty_ = true;
    return;
  }
  for (const Constraint& existing : constraints_)
    if (existing == c) return;
  constraints_.push_back(std::move(c));
}

void IntegerSet::intersect(const IntegerSet& other) {
  PF_CHECK(other.dims_ == dims_);
  if (other.trivially_empty_) trivially_empty_ = true;
  for (const Constraint& c : other.constraints_) add_constraint(c);
}

lp::IlpProblem IntegerSet::to_ilp() const {
  lp::IlpProblem p = lp::IlpProblem::all_free(dims_);
  for (const Constraint& c : constraints_) {
    if (c.is_equality)
      p.add_equality(c.expr.coeffs(), c.expr.const_term());
    else
      p.add_inequality(c.expr.coeffs(), c.expr.const_term());
  }
  return p;
}

bool IntegerSet::is_empty(const lp::IlpOptions& options) const {
  if (trivially_empty_) return true;
  return to_ilp().proven_empty(options);
}

bool IntegerSet::contains(const IntVector& point) const {
  if (trivially_empty_) return false;
  for (const Constraint& c : constraints_) {
    const i64 v = c.expr.eval(point);
    if (c.is_equality ? v != 0 : v < 0) return false;
  }
  return true;
}

std::optional<IntVector> IntegerSet::sample_point(
    const lp::IlpOptions& options) const {
  if (trivially_empty_) return std::nullopt;
  const lp::IlpResult r = to_ilp().find_point(options);
  if (r.status == lp::IlpStatus::kOptimal) return r.point;
  return std::nullopt;
}

IntegerSet::Opt IntegerSet::integer_min(const AffineExpr& e,
                                        const lp::IlpOptions& options) const {
  PF_CHECK(e.dims() == dims_);
  if (trivially_empty_) return Opt{Opt::kEmpty, 0};
  const lp::IlpResult r = to_ilp().minimize(e.coeffs(), options);
  switch (r.status) {
    case lp::IlpStatus::kOptimal:
      return Opt{Opt::kOk, checked_add(r.objective, e.const_term())};
    case lp::IlpStatus::kInfeasible:
      return Opt{Opt::kEmpty, 0};
    case lp::IlpStatus::kUnbounded:
      return Opt{Opt::kUnbounded, 0};
    case lp::IlpStatus::kCapExceeded:
      return Opt{Opt::kUnknown, 0};
  }
  return Opt{Opt::kUnknown, 0};
}

IntegerSet::Opt IntegerSet::integer_max(const AffineExpr& e,
                                        const lp::IlpOptions& options) const {
  Opt r = integer_min(-e, options);
  if (r.kind == Opt::kOk) r.value = checked_neg(r.value);
  return r;
}

void IntegerSet::dedupe(std::vector<Constraint>& cs) {
  std::vector<Constraint> out;
  out.reserve(cs.size());
  for (Constraint& c : cs) {
    bool seen = false;
    for (const Constraint& o : out)
      if (o == c) {
        seen = true;
        break;
      }
    if (!seen) out.push_back(std::move(c));
  }
  cs = std::move(out);
}

void IntegerSet::fm_eliminate_column(std::vector<Constraint>& cs,
                                     std::size_t k, bool* trivially_empty) {
  // Prefer exact substitution through an equality with a +-1 coefficient
  // on x_k: x_k = -(rest) keeps the projection integer-exact.
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (!cs[i].is_equality) continue;
    const i64 a = cs[i].expr.coeff(k);
    if (a != 1 && a != -1) continue;
    // e: a*x_k + rest == 0  =>  x_k == -a*rest (since a^2 == 1).
    const AffineExpr e = cs[i].expr;
    std::vector<Constraint> out;
    out.reserve(cs.size() - 1);
    for (std::size_t j = 0; j < cs.size(); ++j) {
      if (j == i) continue;
      Constraint c = cs[j];
      const i64 b = c.expr.coeff(k);
      if (b != 0) c.expr = c.expr - e * checked_mul(b, a);
      PF_CHECK(c.expr.coeff(k) == 0);
      out.push_back(std::move(c));
    }
    cs = std::move(out);
    return;
  }

  // Expand remaining equalities involving x_k into inequality pairs, then
  // run classic Fourier-Motzkin (rational projection).
  std::vector<Constraint> work;
  work.reserve(cs.size());
  for (Constraint& c : cs) {
    if (c.is_equality && c.expr.coeff(k) != 0) {
      work.push_back(Constraint::ge0(c.expr));
      work.push_back(Constraint::ge0(-c.expr));
    } else {
      work.push_back(std::move(c));
    }
  }

  std::vector<Constraint> lowers, uppers, rest;
  for (Constraint& c : work) {
    const i64 a = c.expr.coeff(k);
    if (a > 0)
      lowers.push_back(std::move(c));  // a*x_k >= -(rest)
    else if (a < 0)
      uppers.push_back(std::move(c));  // (-a)*x_k <= rest
    else
      rest.push_back(std::move(c));
  }

  for (const Constraint& lo : lowers) {
    for (const Constraint& up : uppers) {
      const i64 a = lo.expr.coeff(k);        // > 0
      const i64 b = checked_neg(up.expr.coeff(k));  // > 0
      // b*lo + a*up eliminates x_k.
      AffineExpr combined = lo.expr * b + up.expr * a;
      PF_CHECK(combined.coeff(k) == 0);
      if (combined.is_constant()) {
        if (combined.const_term() < 0) *trivially_empty = true;
        continue;
      }
      rest.push_back(Constraint::ge0(std::move(combined)));
    }
  }
  cs = std::move(rest);
}

IntegerSet IntegerSet::eliminate_dims(const std::vector<bool>& remove) const {
  PF_CHECK(remove.size() == dims_);
  std::vector<Constraint> cs = constraints_;
  bool empty = trivially_empty_;

  // Eliminate cheapest column first (fewest lower*upper combinations).
  std::vector<std::size_t> pending;
  for (std::size_t d = 0; d < dims_; ++d)
    if (remove[d]) pending.push_back(d);

  while (!pending.empty() && !empty) {
    std::size_t best_idx = 0;
    long best_cost = -1;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::size_t d = pending[i];
      long lo = 0, up = 0;
      bool has_unit_eq = false;
      for (const Constraint& c : cs) {
        const i64 a = c.expr.coeff(d);
        if (a == 0) continue;
        if (c.is_equality && (a == 1 || a == -1)) has_unit_eq = true;
        if (a > 0)
          ++lo;
        else
          ++up;
      }
      const long cost = has_unit_eq ? 0 : lo * up;
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best_idx = i;
      }
    }
    const std::size_t d = pending[best_idx];
    pending.erase(pending.begin() + static_cast<long>(best_idx));
    fm_eliminate_column(cs, d, &empty);
    dedupe(cs);
  }

  // Shrink: drop the removed columns (all zero now).
  std::size_t new_dims = 0;
  for (std::size_t d = 0; d < dims_; ++d)
    if (!remove[d]) ++new_dims;
  IntegerSet out(new_dims);
  out.trivially_empty_ = empty;
  if (!empty) {
    for (Constraint& c : cs) {
      Constraint shrunk{c.expr.drop_dims(remove), c.is_equality};
      out.add_constraint(std::move(shrunk));
    }
  }
  return out;
}

IntegerSet IntegerSet::eliminate_dim(std::size_t k) const {
  std::vector<bool> remove(dims_, false);
  remove[k] = true;
  return eliminate_dims(remove);
}

IntegerSet IntegerSet::project_onto_prefix(std::size_t n) const {
  PF_CHECK(n <= dims_);
  std::vector<bool> remove(dims_, false);
  for (std::size_t d = n; d < dims_; ++d) remove[d] = true;
  return eliminate_dims(remove);
}

IntegerSet IntegerSet::insert_dims(std::size_t pos, std::size_t count) const {
  IntegerSet out(dims_ + count);
  out.trivially_empty_ = trivially_empty_;
  for (const Constraint& c : constraints_)
    out.constraints_.push_back(
        Constraint{c.expr.insert_dims(pos, count), c.is_equality});
  return out;
}

void IntegerSet::remove_redundant() {
  if (trivially_empty_) return;
  for (std::size_t i = 0; i < constraints_.size();) {
    if (constraints_[i].is_equality) {
      ++i;
      continue;
    }
    // Is expr >= 0 implied by the others (over the rationals)?
    lp::SimplexSolver lp = lp::SimplexSolver::all_free(dims_);
    for (std::size_t j = 0; j < constraints_.size(); ++j) {
      if (j == i) continue;
      const Constraint& c = constraints_[j];
      RatVector coeffs(dims_);
      for (std::size_t d = 0; d < dims_; ++d)
        coeffs[d] = Rational(c.expr.coeff(d));
      if (c.is_equality)
        lp.add_equality(std::move(coeffs), Rational(c.expr.const_term()));
      else
        lp.add_inequality(std::move(coeffs), Rational(c.expr.const_term()));
    }
    RatVector obj(dims_);
    for (std::size_t d = 0; d < dims_; ++d)
      obj[d] = Rational(constraints_[i].expr.coeff(d));
    const auto r = lp.minimize(obj);
    const bool redundant =
        r.status == lp::Status::kOptimal &&
        r.objective + Rational(constraints_[i].expr.const_term()) >=
            Rational(0);
    if (redundant)
      constraints_.erase(constraints_.begin() + static_cast<long>(i));
    else
      ++i;
  }
}

std::string IntegerSet::to_string(
    const std::vector<std::string>& names) const {
  if (trivially_empty_) return "{ false }";
  std::ostringstream os;
  os << "{ ";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i != 0) os << " and ";
    os << constraints_[i].to_string(names);
  }
  if (constraints_.empty()) os << "true";
  os << " }";
  return os.str();
}

}  // namespace pf::poly
