#include "poly/set.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "lp/fastlane.h"
#include "lp/simplex.h"
#include "poly/cache_internal.h"
#include "poly/count.h"
#include "support/budget.h"
#include "support/diskcache.h"
#include "support/stats.h"

namespace pf::poly {

// ---------------------------------------------------------------------------
// Polyhedral solve cache.
//
// Content-addressed memo table for is_empty / integer_min (integer_max
// funnels through integer_min). The key is the full canonical blob --
// sorted, gcd-normalized constraint rows plus the operation tag, objective
// and ILP node cap -- so equality is exact and a hash collision can never
// return a wrong answer. Sharded by hash to keep lock contention off the
// dependence-analysis worker threads; the value is computed outside the
// lock (a racing duplicate computation stores the identical result).
// ---------------------------------------------------------------------------

namespace {

enum class SolveOp : i64 { kIsEmpty = 1, kMin = 2 };

struct SolveKey {
  std::vector<i64> blob;
  std::size_t hash = 0;
  bool operator==(const SolveKey& o) const { return blob == o.blob; }
};

struct SolveKeyHash {
  std::size_t operator()(const SolveKey& k) const { return k.hash; }
};

struct SolveValue {
  bool empty = false;                         // for kIsEmpty
  IntegerSet::Opt opt{IntegerSet::Opt::kEmpty, 0};  // for kMin
};

struct CacheShard {
  std::mutex mu;
  std::unordered_map<SolveKey, SolveValue, SolveKeyHash> map;
};

constexpr std::size_t kNumShards = 16;

std::array<CacheShard, kNumShards>& cache_shards() {
  static std::array<CacheShard, kNumShards> shards;
  return shards;
}

using SolveMap = std::unordered_map<SolveKey, SolveValue, SolveKeyHash>;

// SolveCacheScope target: while installed, the thread's lookups and
// stores go to this private table instead of the sharded process-wide
// one (no lock needed -- it is touched by exactly one thread).
thread_local SolveMap* tl_private_solve = nullptr;

std::atomic<bool> g_solve_cache_enabled{true};

// Persistent-store domain tags (entry namespaces in support/diskcache).
constexpr const char* kSolveDomain = "solve";

// On-disk value layouts. kIsEmpty: {empty}; kMin: {kind, value}. Kept
// explicit and versionless -- the diskcache fingerprint already rebinds
// entries on every rebuild of this binary.
std::vector<i64> encode_empty(const SolveValue& v) {
  return {v.empty ? i64{1} : i64{0}};
}

bool decode_empty(const std::vector<i64>& raw, SolveValue* v) {
  if (raw.size() != 1 || (raw[0] != 0 && raw[0] != 1)) return false;
  v->empty = raw[0] == 1;
  return true;
}

std::vector<i64> encode_opt(const SolveValue& v) {
  return {static_cast<i64>(v.opt.kind), v.opt.value};
}

bool decode_opt(const std::vector<i64>& raw, SolveValue* v) {
  if (raw.size() != 2 || raw[0] < IntegerSet::Opt::kOk ||
      raw[0] > IntegerSet::Opt::kUnknown)
    return false;
  v->opt.kind = static_cast<IntegerSet::Opt::Kind>(raw[0]);
  v->opt.value = raw[0] == IntegerSet::Opt::kOk ? raw[1] : 0;
  return true;
}

SolveKey make_solve_key(SolveOp op, std::size_t dims,
                        const std::vector<Constraint>& constraints,
                        const AffineExpr* objective, long node_cap) {
  // Canonicalize: serialize each (already gcd-normalized) row and sort
  // rows, so insertion order never splits cache entries.
  std::vector<std::vector<i64>> rows;
  rows.reserve(constraints.size());
  for (const Constraint& c : constraints) {
    std::vector<i64> row;
    row.reserve(dims + 2);
    row.push_back(c.is_equality ? 1 : 0);
    row.push_back(c.expr.const_term());
    for (std::size_t k = 0; k < dims; ++k) row.push_back(c.expr.coeff(k));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());

  SolveKey key;
  key.blob.reserve(4 + rows.size() * (dims + 2) + (objective ? dims + 1 : 0));
  key.blob.push_back(static_cast<i64>(op));
  key.blob.push_back(static_cast<i64>(node_cap));
  key.blob.push_back(static_cast<i64>(dims));
  key.blob.push_back(static_cast<i64>(rows.size()));
  for (const auto& row : rows)
    key.blob.insert(key.blob.end(), row.begin(), row.end());
  if (objective) {
    key.blob.push_back(objective->const_term());
    for (std::size_t k = 0; k < dims; ++k)
      key.blob.push_back(objective->coeff(k));
  }
  std::size_t seed = 0;
  for (const i64 v : key.blob) hash_combine(seed, std::hash<i64>{}(v));
  key.hash = seed;
  return key;
}

bool cache_lookup(const SolveKey& key, SolveValue* out) {
  if (tl_private_solve != nullptr) {
    const auto it = tl_private_solve->find(key);
    if (it == tl_private_solve->end()) return false;
    *out = it->second;
    return true;
  }
  CacheShard& shard = cache_shards()[key.hash % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *out = it->second;
  return true;
}

void cache_store(SolveKey key, const SolveValue& value) {
  if (tl_private_solve != nullptr) {
    tl_private_solve->emplace(std::move(key), value);
    return;
  }
  CacheShard& shard = cache_shards()[key.hash % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.emplace(std::move(key), value);
}

}  // namespace

void set_solve_cache_enabled(bool enabled) {
  g_solve_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool solve_cache_enabled() {
  return g_solve_cache_enabled.load(std::memory_order_relaxed);
}

void clear_solve_cache() {
  if (tl_private_solve != nullptr) tl_private_solve->clear();
  for (CacheShard& shard : cache_shards()) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  clear_count_cache();
}

SolveCacheScope::SolveCacheScope()
    : previous_solve_(tl_private_solve),
      previous_count_(internal::push_private_count_cache()) {
  tl_private_solve = new SolveMap();
}

SolveCacheScope::~SolveCacheScope() {
  delete tl_private_solve;
  tl_private_solve = static_cast<SolveMap*>(previous_solve_);
  internal::pop_private_count_cache(previous_count_);
}

bool IntegerSet::normalize(Constraint& c) const {
  PF_CHECK_MSG(c.expr.dims() == dims_, "constraint space mismatch: "
                                           << c.expr.dims() << " vs " << dims_);
  i64 g = 0;
  for (i64 v : c.expr.coeffs()) g = gcd(g, v);
  if (g == 0) {
    // Constant constraint.
    if (c.is_equality) return c.expr.const_term() == 0;
    return c.expr.const_term() >= 0;
  }
  if (g > 1) {
    AffineExpr e(dims_);
    for (std::size_t i = 0; i < dims_; ++i) e.set_coeff(i, c.expr.coeff(i) / g);
    if (c.is_equality) {
      if (c.expr.const_term() % g != 0) return false;
      e.set_const_term(c.expr.const_term() / g);
    } else {
      e.set_const_term(floor_div(c.expr.const_term(), g));
    }
    c.expr = e;
  }
  return true;
}

void IntegerSet::add_constraint(Constraint c) {
  if (trivially_empty_) return;
  i64 g = 0;
  for (i64 v : c.expr.coeffs()) g = gcd(g, v);
  if (g == 0) {
    // Constant: either trivially true (drop) or proves emptiness.
    const bool ok = c.is_equality ? c.expr.const_term() == 0
                                  : c.expr.const_term() >= 0;
    if (!ok) mark_trivially_empty();
    return;
  }
  if (!normalize(c)) {
    mark_trivially_empty();
    return;
  }
  for (const Constraint& existing : constraints_)
    if (existing == c) return;
  constraints_.push_back(std::move(c));
}

void IntegerSet::intersect(const IntegerSet& other) {
  PF_CHECK(other.dims_ == dims_);
  if (other.trivially_empty_) {
    mark_trivially_empty();
    return;
  }
  for (const Constraint& c : other.constraints_) add_constraint(c);
}

lp::IlpProblem IntegerSet::to_ilp() const {
  lp::IlpProblem p = lp::IlpProblem::all_free(dims_);
  for (const Constraint& c : constraints_) {
    if (c.is_equality)
      p.add_equality(c.expr.coeffs(), c.expr.const_term());
    else
      p.add_inequality(c.expr.coeffs(), c.expr.const_term());
  }
  return p;
}

bool IntegerSet::is_empty(const lp::IlpOptions& options) const {
  if (trivially_empty_) return true;
  // A constraint-free set is the universe (even zero-dimensional, where
  // the single point is the empty tuple) -- never empty, no ILP needed.
  if (constraints_.empty()) return false;
  if (support::budget_limited()) {
    // Budgeted solves bypass the cache entirely: a hit would skip the ILP
    // work and make fuel consumption depend on what other threads cached,
    // and a degraded answer must never be memoized as exact.
    try {
      return to_ilp().proven_empty(options);
    } catch (const support::BudgetExceeded&) {
      // Conservative recovery: not *proven* empty, so report non-empty.
      // Callers treat the set as holding a dependence, which can only
      // constrain schedules further (sound over-approximation).
      return false;
    }
  }
  if (!solve_cache_enabled()) return to_ilp().proven_empty(options);

  SolveKey key = make_solve_key(SolveOp::kIsEmpty, dims_, constraints_,
                                nullptr, options.node_cap);
  SolveValue value;
  if (cache_lookup(key, &value)) {
    support::count(support::Counter::kSolveCacheHits);
    return value.empty;
  }
  support::count(support::Counter::kSolveCacheMisses);
  std::vector<i64> raw;
  if (support::diskcache::lookup(kSolveDomain, key.blob, &raw) &&
      decode_empty(raw, &value)) {
    // Persisted by an earlier run: adopt into the in-memory layer so the
    // rest of this run hits locally.
    cache_store(std::move(key), value);
    return value.empty;
  }
  value.empty = to_ilp().proven_empty(options);
  support::diskcache::store(kSolveDomain, key.blob, encode_empty(value));
  cache_store(std::move(key), value);
  return value.empty;
}

bool IntegerSet::contains(const IntVector& point) const {
  PF_CHECK_MSG(point.size() == dims_, "contains: point has "
                                          << point.size() << " coords, set has "
                                          << dims_ << " dims");
  if (trivially_empty_) return false;
  for (const Constraint& c : constraints_) {
    const i64 v = c.expr.eval(point);
    if (c.is_equality ? v != 0 : v < 0) return false;
  }
  return true;
}

std::optional<IntVector> IntegerSet::sample_point(
    const lp::IlpOptions& options) const {
  if (trivially_empty_) return std::nullopt;
  // Universe (any dimension, including zero): the origin is a point.
  if (constraints_.empty()) return IntVector(dims_, 0);
  const lp::IlpResult r = to_ilp().find_point(options);
  if (r.status == lp::IlpStatus::kOptimal) return r.point;
  return std::nullopt;
}

IntegerSet::Opt IntegerSet::integer_min(const AffineExpr& e,
                                        const lp::IlpOptions& options) const {
  PF_CHECK(e.dims() == dims_);
  if (trivially_empty_) return Opt{Opt::kEmpty, 0};
  if (support::budget_limited()) {
    // Same cache bypass + conservative recovery as is_empty: an
    // inconclusive minimum degrades to kUnknown, which every caller
    // treats pessimistically.
    try {
      return integer_min_uncached(e, options);
    } catch (const support::BudgetExceeded&) {
      return Opt{Opt::kUnknown, 0};
    }
  }
  if (!solve_cache_enabled()) return integer_min_uncached(e, options);

  SolveKey key =
      make_solve_key(SolveOp::kMin, dims_, constraints_, &e, options.node_cap);
  SolveValue value;
  if (cache_lookup(key, &value)) {
    support::count(support::Counter::kSolveCacheHits);
    return value.opt;
  }
  support::count(support::Counter::kSolveCacheMisses);
  std::vector<i64> raw;
  if (support::diskcache::lookup(kSolveDomain, key.blob, &raw) &&
      decode_opt(raw, &value)) {
    cache_store(std::move(key), value);
    return value.opt;
  }
  value.opt = integer_min_uncached(e, options);
  support::diskcache::store(kSolveDomain, key.blob, encode_opt(value));
  cache_store(std::move(key), value);
  return value.opt;
}

IntegerSet::Opt IntegerSet::integer_min_uncached(
    const AffineExpr& e, const lp::IlpOptions& options) const {
  const lp::IlpResult r = to_ilp().minimize(e.coeffs(), options);
  switch (r.status) {
    case lp::IlpStatus::kOptimal:
      return Opt{Opt::kOk, checked_add(r.objective, e.const_term())};
    case lp::IlpStatus::kInfeasible:
      return Opt{Opt::kEmpty, 0};
    case lp::IlpStatus::kUnbounded:
      return Opt{Opt::kUnbounded, 0};
    case lp::IlpStatus::kCapExceeded:
      return Opt{Opt::kUnknown, 0};
  }
  return Opt{Opt::kUnknown, 0};
}

IntegerSet::Opt IntegerSet::integer_max(const AffineExpr& e,
                                        const lp::IlpOptions& options) const {
  Opt r = integer_min(-e, options);
  if (r.kind == Opt::kOk) r.value = checked_neg(r.value);
  return r;
}

void IntegerSet::dedupe(std::vector<Constraint>& cs) {
  // Hash-bucketed: near-linear instead of the quadratic all-pairs scan,
  // which matters after an FM step multiplies the row count.
  std::vector<Constraint> out;
  out.reserve(cs.size());
  std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
  buckets.reserve(cs.size());
  for (Constraint& c : cs) {
    auto& bucket = buckets[poly::hash_value(c)];
    bool seen = false;
    for (const std::size_t i : bucket)
      if (out[i] == c) {
        seen = true;
        break;
      }
    if (seen) {
      support::count(support::Counter::kFmeRowsDropped);
      continue;
    }
    bucket.push_back(out.size());
    out.push_back(std::move(c));
  }
  cs = std::move(out);
}

namespace {

inline bool in_i64(i128 v) {
  return v >= static_cast<i128>(INT64_MIN) && v <= static_cast<i128>(INT64_MAX);
}

// ---------------------------------------------------------------------------
// Integer fast lane for the FM row combinations. The exact path builds
// each combined row through staged checked AffineExpr operators, which
// allocate one temporary expression per stage and overflow-check through
// the generic pf::Error machinery. These helpers fuse the combination
// cell-for-cell in 128 bits and report failure (caller reruns the staged
// expression, which throws) exactly when any *staged intermediate* would
// overflow -- not merely the final value -- so error behavior is identical
// with the lane on or off.
// ---------------------------------------------------------------------------

// c := c - e * (b * a), mirroring `c - e * checked_mul(b, a)`.
bool fast_sub_scaled(AffineExpr* c, const AffineExpr& e, i64 b, i64 a) {
  const i128 f = static_cast<i128>(b) * a;
  if (!in_i64(f)) return false;
  const std::size_t d = c->dims();
  IntVector coeffs(d);
  i64 cst = 0;
  for (std::size_t j = 0; j <= d; ++j) {
    const i64 cv = j < d ? c->coeff(j) : c->const_term();
    const i64 ev = j < d ? e.coeff(j) : e.const_term();
    const i128 prod = static_cast<i128>(ev) * f;
    if (!in_i64(prod)) return false;
    const i128 diff = static_cast<i128>(cv) - prod;
    if (!in_i64(diff)) return false;
    if (j < d)
      coeffs[j] = static_cast<i64>(diff);
    else
      cst = static_cast<i64>(diff);
  }
  *c = AffineExpr(std::move(coeffs), cst);
  return true;
}

// out := lo * b + up * a, mirroring `lo.expr * b + up.expr * a`.
bool fast_combine(const AffineExpr& lo, i64 b, const AffineExpr& up, i64 a,
                  AffineExpr* out) {
  const std::size_t d = lo.dims();
  IntVector coeffs(d);
  i64 cst = 0;
  for (std::size_t j = 0; j <= d; ++j) {
    const i128 p1 = static_cast<i128>(j < d ? lo.coeff(j) : lo.const_term()) * b;
    if (!in_i64(p1)) return false;
    const i128 p2 = static_cast<i128>(j < d ? up.coeff(j) : up.const_term()) * a;
    if (!in_i64(p2)) return false;
    const i128 s = p1 + p2;
    if (!in_i64(s)) return false;
    if (j < d)
      coeffs[j] = static_cast<i64>(s);
    else
      cst = static_cast<i64>(s);
  }
  *out = AffineExpr(std::move(coeffs), cst);
  return true;
}

}  // namespace

void IntegerSet::fm_eliminate_column(std::vector<Constraint>& cs,
                                     std::size_t k, bool* trivially_empty) {
  support::budget_charge(support::BudgetSite::kFmeProject);
  bool lane = false;
  if (lp::fastlane_enabled()) {
    if (support::budget_injection_fires(support::BudgetSite::kLpFastlane)) {
      support::count(support::Counter::kFastlaneFmeFallbacks);
      support::observe(support::Hist::kFastlaneFallbackCause,
                       support::kFallbackFmeInjected);
    } else {
      lane = true;
    }
  }
  // Prefer exact substitution through an equality with a +-1 coefficient
  // on x_k: x_k = -(rest) keeps the projection integer-exact.
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (!cs[i].is_equality) continue;
    const i64 a = cs[i].expr.coeff(k);
    if (a != 1 && a != -1) continue;
    // e: a*x_k + rest == 0  =>  x_k == -a*rest (since a^2 == 1).
    const AffineExpr e = cs[i].expr;
    std::vector<Constraint> out;
    out.reserve(cs.size() - 1);
    for (std::size_t j = 0; j < cs.size(); ++j) {
      if (j == i) continue;
      Constraint c = cs[j];
      const i64 b = c.expr.coeff(k);
      if (b != 0) {
        bool fused = false;
        if (lane) {
          fused = fast_sub_scaled(&c.expr, e, b, a);
          support::count(fused ? support::Counter::kFastlaneFmeRows
                               : support::Counter::kFastlaneFmeFallbacks);
          if (!fused)
            support::observe(support::Hist::kFastlaneFallbackCause,
                             support::kFallbackFmeOverflow);
        }
        if (!fused) c.expr = c.expr - e * checked_mul(b, a);
      }
      PF_CHECK(c.expr.coeff(k) == 0);
      out.push_back(std::move(c));
    }
    cs = std::move(out);
    return;
  }

  // Expand remaining equalities involving x_k into inequality pairs, then
  // run classic Fourier-Motzkin (rational projection).
  std::vector<Constraint> work;
  work.reserve(cs.size() + cs.size() / 2);
  for (Constraint& c : cs) {
    if (c.is_equality && c.expr.coeff(k) != 0) {
      work.push_back(Constraint::ge0(c.expr));
      work.push_back(Constraint::ge0(-c.expr));
    } else {
      work.push_back(std::move(c));
    }
  }
  // Dedupe before the pairwise combination: duplicate lower or upper rows
  // would multiply straight into the quadratic blowup.
  dedupe(work);

  std::vector<Constraint> lowers, uppers, rest;
  lowers.reserve(work.size());
  uppers.reserve(work.size());
  rest.reserve(work.size());
  for (Constraint& c : work) {
    const i64 a = c.expr.coeff(k);
    if (a > 0)
      lowers.push_back(std::move(c));  // a*x_k >= -(rest)
    else if (a < 0)
      uppers.push_back(std::move(c));  // (-a)*x_k <= rest
    else
      rest.push_back(std::move(c));
  }

  rest.reserve(rest.size() + lowers.size() * uppers.size());
  i64 rows_generated = 0;
  for (const Constraint& lo : lowers) {
    for (const Constraint& up : uppers) {
      const i64 a = lo.expr.coeff(k);        // > 0
      const i64 b = checked_neg(up.expr.coeff(k));  // > 0
      // b*lo + a*up eliminates x_k.
      AffineExpr combined;
      bool fused = false;
      if (lane) {
        fused = fast_combine(lo.expr, b, up.expr, a, &combined);
        support::count(fused ? support::Counter::kFastlaneFmeRows
                             : support::Counter::kFastlaneFmeFallbacks);
        if (!fused)
          support::observe(support::Hist::kFastlaneFallbackCause,
                           support::kFallbackFmeOverflow);
      }
      if (!fused) combined = lo.expr * b + up.expr * a;
      PF_CHECK(combined.coeff(k) == 0);
      support::count(support::Counter::kFmeRowsGenerated);
      ++rows_generated;
      support::budget_charge(support::BudgetSite::kFmeProject);
      if (combined.is_constant()) {
        if (combined.const_term() < 0) *trivially_empty = true;
        support::count(support::Counter::kFmeRowsDropped);
        continue;
      }
      rest.push_back(Constraint::ge0(std::move(combined)));
    }
  }
  support::observe(support::Hist::kFmeRowsPerElimination, rows_generated);
  cs = std::move(rest);
}

IntegerSet IntegerSet::eliminate_dims(const std::vector<bool>& remove) const {
  PF_CHECK(remove.size() == dims_);
  std::vector<Constraint> cs = constraints_;
  bool empty = trivially_empty_;

  // Eliminate cheapest column first (fewest lower*upper combinations).
  std::vector<std::size_t> pending;
  for (std::size_t d = 0; d < dims_; ++d)
    if (remove[d]) pending.push_back(d);
  // One fme_project "operation" per projection that actually eliminates
  // something (the --inject unit).
  if (!pending.empty()) support::budget_op(support::BudgetSite::kFmeProject);

  while (!pending.empty() && !empty) {
    std::size_t best_idx = 0;
    long best_cost = -1;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const std::size_t d = pending[i];
      long lo = 0, up = 0;
      bool has_unit_eq = false;
      for (const Constraint& c : cs) {
        const i64 a = c.expr.coeff(d);
        if (a == 0) continue;
        if (c.is_equality && (a == 1 || a == -1)) has_unit_eq = true;
        if (a > 0)
          ++lo;
        else
          ++up;
      }
      const long cost = has_unit_eq ? 0 : lo * up;
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best_idx = i;
      }
    }
    const std::size_t d = pending[best_idx];
    pending.erase(pending.begin() + static_cast<long>(best_idx));
    fm_eliminate_column(cs, d, &empty);
    dedupe(cs);
  }

  // Shrink: drop the removed columns (all zero now).
  std::size_t new_dims = 0;
  for (std::size_t d = 0; d < dims_; ++d)
    if (!remove[d]) ++new_dims;
  IntegerSet out(new_dims);
  if (empty) out.mark_trivially_empty();
  if (!empty) {
    for (Constraint& c : cs) {
      Constraint shrunk{c.expr.drop_dims(remove), c.is_equality};
      out.add_constraint(std::move(shrunk));
    }
  }
  return out;
}

IntegerSet IntegerSet::eliminate_dim(std::size_t k) const {
  std::vector<bool> remove(dims_, false);
  remove[k] = true;
  return eliminate_dims(remove);
}

IntegerSet IntegerSet::project_onto_prefix(std::size_t n) const {
  PF_CHECK(n <= dims_);
  std::vector<bool> remove(dims_, false);
  for (std::size_t d = n; d < dims_; ++d) remove[d] = true;
  return eliminate_dims(remove);
}

IntegerSet IntegerSet::insert_dims(std::size_t pos, std::size_t count) const {
  IntegerSet out(dims_ + count);
  if (trivially_empty_) {
    out.mark_trivially_empty();
    return out;
  }
  for (const Constraint& c : constraints_)
    out.constraints_.push_back(
        Constraint{c.expr.insert_dims(pos, count), c.is_equality});
  return out;
}

void IntegerSet::remove_redundant() {
  if (trivially_empty_) return;
  for (std::size_t i = 0; i < constraints_.size();) {
    if (constraints_[i].is_equality) {
      ++i;
      continue;
    }
    // Is expr >= 0 implied by the others (over the rationals)?
    lp::SimplexSolver lp = lp::SimplexSolver::all_free(dims_);
    for (std::size_t j = 0; j < constraints_.size(); ++j) {
      if (j == i) continue;
      const Constraint& c = constraints_[j];
      RatVector coeffs(dims_);
      for (std::size_t d = 0; d < dims_; ++d)
        coeffs[d] = Rational(c.expr.coeff(d));
      if (c.is_equality)
        lp.add_equality(std::move(coeffs), Rational(c.expr.const_term()));
      else
        lp.add_inequality(std::move(coeffs), Rational(c.expr.const_term()));
    }
    RatVector obj(dims_);
    for (std::size_t d = 0; d < dims_; ++d)
      obj[d] = Rational(constraints_[i].expr.coeff(d));
    const auto r = lp.minimize(obj);
    const bool redundant =
        r.status == lp::Status::kOptimal &&
        r.objective + Rational(constraints_[i].expr.const_term()) >= 0;
    if (redundant)
      constraints_.erase(constraints_.begin() + static_cast<long>(i));
    else
      ++i;
  }
}

std::size_t IntegerSet::hash_value() const {
  // Commutative accumulation over per-constraint hashes makes the result
  // insertion-order independent; constraints are already gcd-normalized
  // and deduplicated by add_constraint, so equal sets hash equal.
  std::size_t acc = 0;
  for (const Constraint& c : constraints_)
    acc += poly::hash_value(c);  // + is commutative: order-independent
  std::size_t seed = std::hash<std::size_t>{}(dims_);
  hash_combine(seed, acc);
  hash_combine(seed, std::hash<bool>{}(trivially_empty_));
  return seed;
}

std::string IntegerSet::to_string(
    const std::vector<std::string>& names) const {
  if (trivially_empty_) return "{ false }";
  std::ostringstream os;
  os << "{ ";
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i != 0) os << " and ";
    os << constraints_[i].to_string(names);
  }
  if (constraints_.empty()) os << "true";
  os << " }";
  return os.str();
}

}  // namespace pf::poly
