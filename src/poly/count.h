// Exact integer-point counting over IntegerSet / SetUnion.
//
// The counter recurses dimension by dimension: the exact integer range
// of the leading dim comes from the existing integer_min / integer_max
// ILP machinery, each value in the range is substituted (the dim drops
// out) and the remainder counted recursively. A dim that shares no
// constraint with any other dim is *separable*: its contribution is a
// plain range length multiplied into the rest, which makes rectangular
// iteration domains O(dims) ILP solves instead of a full enumeration.
//
// count_projection counts the distinct assignments to a dim *prefix*
// that extend to a full point -- the exact integer projection, with the
// trailing dims treated as existentially quantified. That is what
// per-array footprints need (distinct cells touched by a loop nest),
// and it sidesteps Fourier-Motzkin's rational overapproximation for
// accesses like a[2*i].
//
// Unions: count_points uses inclusion-exclusion over the disjuncts
// (switching to exact joint prefix enumeration, whose work the step
// guard bounds, when 2^n intersections would blow up); count_projection
// enumerates the shared prefix cell by cell, testing membership against
// any disjunct.
//
// Results are structured, never wrong: a set the engine cannot finish
// (fuel budget exhausted, ILP node cap, step guard, int64 overflow)
// reports kUnknown; a genuinely infinite set reports kUnbounded. All
// arithmetic is int128 compute-then-commit with a checked narrowing to
// int64 (the PR 6 fast-lane pattern). Every recursion step charges the
// count_set fuel site, and finished subproblems are memoized in a
// sharded content-addressed cache alongside the solve cache (cleared by
// poly::clear_solve_cache).
#pragma once

#include <string>

#include "poly/set.h"
#include "poly/set_union.h"

namespace pf::poly {

/// Outcome of an exact point count.
struct Count {
  enum Kind { kExact, kUnbounded, kUnknown } kind = kExact;
  i64 value = 0;  // valid iff kind == kExact

  static Count exact(i64 v) { return Count{kExact, v}; }
  static Count unbounded() { return Count{kUnbounded, 0}; }
  static Count unknown() { return Count{kUnknown, 0}; }

  bool is_exact() const { return kind == kExact; }
  /// "12", "unbounded" or "unknown" -- the spelling the --analyze JSON
  /// report and the tests share.
  std::string to_string() const;
};

struct CountOptions {
  lp::IlpOptions ilp;
  /// Inclusion-exclusion over a SetUnion visits 2^n - 1 intersections;
  /// beyond this many disjuncts count_points switches to joint prefix
  /// enumeration (exact, bounded by the step guard).
  std::size_t max_inclusion_exclusion_disjuncts = 8;
  /// Hard guard on recursion steps per top-level count (a step is one
  /// enumerated value of one dim). Exceeding it yields kUnknown.
  i64 max_steps = 1 << 22;
};

/// Number of integer points of `s`. Exact, unbounded, or unknown.
Count count_points(const IntegerSet& s, const CountOptions& options = {});
/// Number of integer points of the union (inclusion-exclusion /
/// progressive subtraction; overlapping disjuncts are not double-counted).
Count count_points(const SetUnion& u, const CountOptions& options = {});

/// Number of distinct assignments to dims [0, prefix) that extend to a
/// full integer point of `s` -- the exact integer projection count.
Count count_projection(const IntegerSet& s, std::size_t prefix,
                       const CountOptions& options = {});
Count count_projection(const SetUnion& u, std::size_t prefix,
                       const CountOptions& options = {});

/// Drop every memoized count (called from poly::clear_solve_cache).
void clear_count_cache();

}  // namespace pf::poly
