#include "poly/count.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <mutex>
#include <unordered_map>

#include "poly/cache_internal.h"
#include "support/budget.h"
#include "support/diskcache.h"
#include "support/error.h"
#include "support/metrics.h"

namespace pf::poly {
namespace {

inline bool in_i64(i128 v) {
  return v >= static_cast<i128>(INT64_MIN) && v <= static_cast<i128>(INT64_MAX);
}

// ---------------------------------------------------------------------------
// Count cache. Finished subproblems (a canonical constraint system plus
// the prefix length and the ILP node cap) are memoized in a sharded,
// content-addressed table -- the recursion re-derives structurally
// identical slices constantly (every iteration of a rectangular loop
// leaves the same remainder set). Keys compare full canonical content,
// so hits are exact and results are byte-identical with the cache on or
// off. kUnknown results are never stored: they can depend on transient
// state (the step guard, the remaining fuel), not just on the key.
// ---------------------------------------------------------------------------

struct CountKey {
  std::vector<i64> blob;
  std::size_t hash = 0;
  bool operator==(const CountKey& o) const { return blob == o.blob; }
};

struct CountKeyHash {
  std::size_t operator()(const CountKey& k) const { return k.hash; }
};

struct CountShard {
  std::mutex mu;
  std::unordered_map<CountKey, Count, CountKeyHash> map;
};

constexpr std::size_t kNumCountShards = 16;

std::array<CountShard, kNumCountShards>& count_shards() {
  static auto* shards = new std::array<CountShard, kNumCountShards>();
  return *shards;
}

CountKey make_count_key(const IntegerSet& s, std::size_t prefix,
                        long node_cap) {
  CountKey key;
  const std::size_t dims = s.dims();
  std::vector<std::vector<i64>> rows;
  rows.reserve(s.num_constraints());
  for (const Constraint& c : s.constraints()) {
    std::vector<i64> row;
    row.reserve(dims + 2);
    row.push_back(c.is_equality ? 1 : 0);
    row.push_back(c.expr.const_term());
    for (std::size_t k = 0; k < dims; ++k) row.push_back(c.expr.coeff(k));
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  key.blob.reserve(4 + rows.size() * (dims + 2));
  key.blob.push_back(static_cast<i64>(prefix));
  key.blob.push_back(static_cast<i64>(node_cap));
  key.blob.push_back(static_cast<i64>(dims));
  key.blob.push_back(static_cast<i64>(rows.size()));
  for (const auto& row : rows)
    key.blob.insert(key.blob.end(), row.begin(), row.end());
  std::size_t h = std::hash<std::size_t>{}(key.blob.size());
  for (const i64 v : key.blob) hash_combine(h, std::hash<i64>{}(v));
  key.hash = h;
  return key;
}

using CountMap = std::unordered_map<CountKey, Count, CountKeyHash>;

// SolveCacheScope target (installed via internal::push_private_count_cache
// from set.cpp): while set, this thread's count-cache traffic stays
// private. Single-thread access, so no lock.
thread_local CountMap* tl_private_count = nullptr;

bool count_cache_lookup(const CountKey& key, Count* out) {
  if (tl_private_count != nullptr) {
    const auto it = tl_private_count->find(key);
    if (it == tl_private_count->end()) return false;
    *out = it->second;
    return true;
  }
  CountShard& shard = count_shards()[key.hash % kNumCountShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *out = it->second;
  return true;
}

void count_cache_store(const CountKey& key, const Count& value) {
  if (tl_private_count != nullptr) {
    tl_private_count->emplace(key, value);
    return;
  }
  CountShard& shard = count_shards()[key.hash % kNumCountShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.emplace(key, value);
}

// Persistent-store plumbing (support/diskcache, domain "count"). Only
// exact and unbounded results cross process lifetimes; kUnknown is never
// persisted for the same reason it is never memoized -- it can reflect
// transient state (step guard, remaining fuel), not just the key.
constexpr const char* kCountDomain = "count";

bool disk_count_lookup(const CountKey& key, Count* out) {
  std::vector<i64> raw;
  if (!support::diskcache::lookup(kCountDomain, key.blob, &raw)) return false;
  if (raw.size() != 2) return false;
  if (raw[0] == Count::kExact) {
    *out = Count::exact(raw[1]);
    return true;
  }
  if (raw[0] == Count::kUnbounded && raw[1] == 0) {
    *out = Count::unbounded();
    return true;
  }
  return false;
}

void disk_count_store(const CountKey& key, const Count& value) {
  if (value.kind == Count::kUnknown) return;
  support::diskcache::store(
      kCountDomain, key.blob,
      {static_cast<i64>(value.kind),
       value.kind == Count::kExact ? value.value : 0});
}

// ---------------------------------------------------------------------------
// Recursive counting.
// ---------------------------------------------------------------------------

struct Ctx {
  const CountOptions& opts;
  i64 steps = 0;
  bool use_cache = false;
};

// One recursion node: announce the op (fault injection point), spend one
// fuel unit, and bump the step guard. BudgetExceeded unwinds to the
// top-level wrapper, which reports kUnknown.
bool step(Ctx& ctx) {
  support::budget_op(support::BudgetSite::kCountSet);
  support::budget_charge(support::BudgetSite::kCountSet);
  ++ctx.steps;
  return ctx.steps <= ctx.opts.max_steps;
}

// Definite emptiness probe. IntegerSet::is_empty is conservative the
// wrong way for counting (a capped search answers "may be non-empty",
// which would count a phantom point), so probe through integer_min of a
// constant objective, whose kUnknown is explicit.
Count probe_nonempty(const IntegerSet& s, const lp::IlpOptions& ilp) {
  if (s.trivially_empty()) return Count::exact(0);
  if (s.num_constraints() == 0) return Count::exact(1);  // universe
  const auto r = s.integer_min(AffineExpr::constant(s.dims(), 0), ilp);
  switch (r.kind) {
    case IntegerSet::Opt::kOk:
    case IntegerSet::Opt::kUnbounded:  // feasible either way
      return Count::exact(1);
    case IntegerSet::Opt::kEmpty:
      return Count::exact(0);
    case IntegerSet::Opt::kUnknown:
      break;
  }
  return Count::unknown();
}

// Exact integer range of dim 0, or the structured degradation.
struct Dim0Range {
  enum Kind { kRange, kEmpty, kUnbounded, kUnknown } kind = kEmpty;
  i64 lo = 0;
  i64 hi = 0;
};

Dim0Range dim0_range(const IntegerSet& s, const lp::IlpOptions& ilp) {
  const AffineExpr x0 = AffineExpr::var(s.dims(), 0);
  const auto mn = s.integer_min(x0, ilp);
  if (mn.kind == IntegerSet::Opt::kEmpty) return {Dim0Range::kEmpty, 0, 0};
  if (mn.kind == IntegerSet::Opt::kUnknown) return {Dim0Range::kUnknown, 0, 0};
  if (mn.kind == IntegerSet::Opt::kUnbounded) {
    // The LP relaxation can be unbounded over an integer-empty set (gcd
    // gaps); distinguish via the feasibility probe.
    const Count probe = probe_nonempty(s, ilp);
    if (probe.is_exact())
      return {probe.value == 0 ? Dim0Range::kEmpty : Dim0Range::kUnbounded, 0,
              0};
    return {Dim0Range::kUnknown, 0, 0};
  }
  const auto mx = s.integer_max(x0, ilp);
  if (mx.kind == IntegerSet::Opt::kEmpty) return {Dim0Range::kEmpty, 0, 0};
  if (mx.kind == IntegerSet::Opt::kUnknown) return {Dim0Range::kUnknown, 0, 0};
  if (mx.kind == IntegerSet::Opt::kUnbounded)
    return {Dim0Range::kUnbounded, 0, 0};
  return {Dim0Range::kRange, mn.value, mx.value};
}

// True when no constraint couples dim 0 to another dim: the dim's
// contribution is then an independent range factor.
bool dim0_separable(const IntegerSet& s) {
  for (const Constraint& c : s.constraints()) {
    if (c.expr.coeff(0) == 0) continue;
    for (std::size_t k = 1; k < s.dims(); ++k)
      if (c.expr.coeff(k) != 0) return false;
  }
  return true;
}

// Substitute dim 0 := v (the constant folds in; the dim drops out).
// nullopt on int64 overflow of a folded constant.
std::optional<IntegerSet> fix_dim0(const IntegerSet& s, i64 v) {
  IntegerSet out(s.dims() - 1);
  for (const Constraint& c : s.constraints()) {
    const i128 folded = static_cast<i128>(c.expr.coeff(0)) * v +
                        static_cast<i128>(c.expr.const_term());
    if (!in_i64(folded)) return std::nullopt;
    AffineExpr e(s.dims() - 1, static_cast<i64>(folded));
    for (std::size_t k = 1; k < s.dims(); ++k)
      e.set_coeff(k - 1, c.expr.coeff(k));
    out.add_constraint(Constraint{std::move(e), c.is_equality});
    if (out.trivially_empty()) break;
  }
  return out;
}

// Drop dim 0 keeping only constraints that do not mention it (the
// separable case: the dropped constraints are pure dim-0 bounds already
// summarized by the range).
IntegerSet drop_dim0(const IntegerSet& s) {
  IntegerSet out(s.dims() - 1);
  for (const Constraint& c : s.constraints()) {
    if (c.expr.coeff(0) != 0) continue;
    AffineExpr e(s.dims() - 1, c.expr.const_term());
    for (std::size_t k = 1; k < s.dims(); ++k)
      e.set_coeff(k - 1, c.expr.coeff(k));
    out.add_constraint(Constraint{std::move(e), c.is_equality});
  }
  return out;
}

Count count_set_prefix(const IntegerSet& s, std::size_t prefix, Ctx& ctx);

Count count_set_prefix_uncached(const IntegerSet& s, std::size_t prefix,
                                Ctx& ctx) {
  const lp::IlpOptions& ilp = ctx.opts.ilp;
  const Dim0Range r = dim0_range(s, ilp);
  switch (r.kind) {
    case Dim0Range::kEmpty:
      return Count::exact(0);
    case Dim0Range::kUnknown:
      return Count::unknown();
    case Dim0Range::kUnbounded:
      return Count::unbounded();
    case Dim0Range::kRange:
      break;
  }
  const i128 range = static_cast<i128>(r.hi) - r.lo + 1;
  if (s.dims() == 1) {
    // All 1-D constraints normalize to unit coefficients, so the set is
    // the gap-free integer interval [lo, hi].
    return in_i64(range) ? Count::exact(static_cast<i64>(range))
                         : Count::unknown();
  }
  if (dim0_separable(s)) {
    const Count rest = count_set_prefix(drop_dim0(s), prefix - 1, ctx);
    if (rest.kind != Count::kExact) return rest;
    const i128 total = range * rest.value;
    return in_i64(total) ? Count::exact(static_cast<i64>(total))
                         : Count::unknown();
  }
  if (range > ctx.opts.max_steps - ctx.steps) return Count::unknown();
  i128 total = 0;
  for (i64 v = r.lo;; ++v) {
    if (!step(ctx)) return Count::unknown();
    const auto fixed = fix_dim0(s, v);
    if (!fixed) return Count::unknown();
    const Count sub = count_set_prefix(*fixed, prefix - 1, ctx);
    if (sub.kind != Count::kExact) return sub;
    total += sub.value;
    if (v == r.hi) break;
  }
  return in_i64(total) ? Count::exact(static_cast<i64>(total))
                       : Count::unknown();
}

// Count the assignments to dims [0, prefix) of `s` extendable to a full
// integer point. Invariant: prefix <= s.dims().
Count count_set_prefix(const IntegerSet& s, std::size_t prefix, Ctx& ctx) {
  if (s.trivially_empty()) return Count::exact(0);
  if (prefix == 0) return probe_nonempty(s, ctx.opts.ilp);
  if (!step(ctx)) return Count::unknown();
  CountKey key;
  if (ctx.use_cache) {
    key = make_count_key(s, prefix, ctx.opts.ilp.node_cap);
    Count cached;
    if (count_cache_lookup(key, &cached)) {
      support::count(support::Counter::kCountCacheHits);
      return cached;
    }
    support::count(support::Counter::kCountCacheMisses);
    if (disk_count_lookup(key, &cached)) {
      count_cache_store(key, cached);
      return cached;
    }
  }
  const Count result = count_set_prefix_uncached(s, prefix, ctx);
  if (ctx.use_cache && result.kind != Count::kUnknown) {
    count_cache_store(key, result);
    disk_count_store(key, result);
  }
  return result;
}

// Union prefix counting: enumerate the leading dim over the union of the
// disjunct ranges, recursing on the fixed slices. Cells covered by
// several disjuncts are counted once (membership, not summation).
Count count_union_prefix(const std::vector<IntegerSet>& disjuncts,
                         std::size_t prefix, Ctx& ctx) {
  std::vector<IntegerSet> live;
  live.reserve(disjuncts.size());
  for (const IntegerSet& d : disjuncts)
    if (!d.trivially_empty()) live.push_back(d);
  if (live.empty()) return Count::exact(0);
  if (live.size() == 1) return count_set_prefix(live[0], prefix, ctx);
  if (prefix == 0) {
    bool unknown = false;
    for (const IntegerSet& d : live) {
      const Count probe = probe_nonempty(d, ctx.opts.ilp);
      if (probe.is_exact() && probe.value == 1) return Count::exact(1);
      if (!probe.is_exact()) unknown = true;
    }
    return unknown ? Count::unknown() : Count::exact(0);
  }
  if (!step(ctx)) return Count::unknown();
  // Joint range of dim 0 across the live disjuncts.
  bool have_range = false;
  i64 lo = 0;
  i64 hi = 0;
  std::vector<const IntegerSet*> present;
  for (const IntegerSet& d : live) {
    const Dim0Range r = dim0_range(d, ctx.opts.ilp);
    switch (r.kind) {
      case Dim0Range::kEmpty:
        continue;
      case Dim0Range::kUnknown:
        return Count::unknown();
      case Dim0Range::kUnbounded:
        return Count::unbounded();
      case Dim0Range::kRange:
        break;
    }
    lo = have_range ? std::min(lo, r.lo) : r.lo;
    hi = have_range ? std::max(hi, r.hi) : r.hi;
    have_range = true;
    present.push_back(&d);
  }
  if (!have_range) return Count::exact(0);
  const i128 range = static_cast<i128>(hi) - lo + 1;
  if (range > ctx.opts.max_steps - ctx.steps) return Count::unknown();
  i128 total = 0;
  for (i64 v = lo;; ++v) {
    if (!step(ctx)) return Count::unknown();
    std::vector<IntegerSet> fixed;
    fixed.reserve(present.size());
    for (const IntegerSet* d : present) {
      auto f = fix_dim0(*d, v);
      if (!f) return Count::unknown();
      if (!f->trivially_empty()) fixed.push_back(std::move(*f));
    }
    const Count sub = count_union_prefix(fixed, prefix - 1, ctx);
    if (sub.kind != Count::kExact) return sub;
    total += sub.value;
    if (v == hi) break;
  }
  return in_i64(total) ? Count::exact(static_cast<i64>(total))
                       : Count::unknown();
}

// Top-level wrapper: counters, the steps histogram, the wall-clock
// histogram, and the BudgetExceeded -> kUnknown recovery boundary.
template <typename Fn>
Count count_top_level(const CountOptions& options, Fn&& fn) {
  support::count(support::Counter::kCountSolves);
  const auto t0 = std::chrono::steady_clock::now();
  Ctx ctx{options, 0,
          solve_cache_enabled() && !support::budget_limited()};
  Count result = Count::unknown();
  try {
    result = fn(ctx);
  } catch (const support::BudgetExceeded&) {
    result = Count::unknown();
  }
  support::count(support::Counter::kCountSteps, ctx.steps);
  support::observe(support::Hist::kCountStepsPerSolve, ctx.steps);
  if (result.kind == Count::kUnknown)
    support::count(support::Counter::kCountUnknowns);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  support::observe(support::Hist::kCountSolveMicros, static_cast<i64>(us));
  return result;
}

}  // namespace

std::string Count::to_string() const {
  switch (kind) {
    case kExact:
      return std::to_string(value);
    case kUnbounded:
      return "unbounded";
    case kUnknown:
      break;
  }
  return "unknown";
}

Count count_points(const IntegerSet& s, const CountOptions& options) {
  return count_top_level(options, [&](Ctx& ctx) {
    return count_set_prefix(s, s.dims(), ctx);
  });
}

Count count_projection(const IntegerSet& s, std::size_t prefix,
                       const CountOptions& options) {
  PF_CHECK(prefix <= s.dims());
  return count_top_level(options, [&](Ctx& ctx) {
    return count_set_prefix(s, prefix, ctx);
  });
}

Count count_projection(const SetUnion& u, std::size_t prefix,
                       const CountOptions& options) {
  PF_CHECK(prefix <= u.dims());
  return count_top_level(options, [&](Ctx& ctx) {
    return count_union_prefix(u.disjuncts(), prefix, ctx);
  });
}

Count count_points(const SetUnion& u, const CountOptions& options) {
  const std::vector<IntegerSet>& ds = u.disjuncts();
  if (ds.empty()) return Count::exact(0);
  if (ds.size() == 1) return count_points(ds[0], options);
  if (ds.size() <= options.max_inclusion_exclusion_disjuncts) {
    // Inclusion-exclusion: |union A_i| = sum over non-empty subsets S of
    // (-1)^(|S|+1) |intersection of S|.
    i128 total = 0;
    const std::size_t n = ds.size();
    for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
      IntegerSet inter(u.dims());
      int picked = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i & 1U) == 0) continue;
        ++picked;
        if (picked == 1)
          inter = ds[i];
        else
          inter.intersect(ds[i]);
        if (inter.trivially_empty()) break;
      }
      if (inter.trivially_empty()) continue;
      const Count c = count_points(inter, options);
      if (c.kind == Count::kUnknown) return Count::unknown();
      // An unbounded intersection is contained in the union.
      if (c.kind == Count::kUnbounded) return Count::unbounded();
      total += (picked % 2 == 1) ? static_cast<i128>(c.value)
                                 : -static_cast<i128>(c.value);
    }
    return in_i64(total) ? Count::exact(static_cast<i64>(total))
                         : Count::unknown();
  }
  // Too many disjuncts for 2^n - 1 intersections: joint prefix
  // enumeration instead. Exact (membership semantics never double
  // counts), and -- unlike subtracting disjuncts from each other, whose
  // piece count multiplies with every subtraction -- its total work is
  // bounded by the single shared step guard.
  return count_top_level(options, [&](Ctx& ctx) {
    return count_union_prefix(ds, u.dims(), ctx);
  });
}

void clear_count_cache() {
  if (tl_private_count != nullptr) tl_private_count->clear();
  for (CountShard& shard : count_shards()) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

namespace internal {

void* push_private_count_cache() {
  CountMap* previous = tl_private_count;
  tl_private_count = new CountMap();
  return previous;
}

void pop_private_count_cache(void* previous) {
  delete tl_private_count;
  tl_private_count = static_cast<CountMap*>(previous);
}

}  // namespace internal

}  // namespace pf::poly
