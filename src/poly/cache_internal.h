// Poly-internal plumbing for SolveCacheScope (see poly/set.h): the scope
// object lives in set.cpp but must also swap the count cache (count.cpp)
// onto a thread-private table. Not part of the public poly API.
#pragma once

namespace pf::poly::internal {

/// Install a fresh thread-private count-cache table on the calling
/// thread; returns the previously installed table (nullptr when the
/// thread was using the process-wide sharded cache).
void* push_private_count_cache();

/// Tear down the calling thread's private count cache and restore
/// `previous` (as returned by the matching push).
void pop_private_count_cache(void* previous);

}  // namespace pf::poly::internal
