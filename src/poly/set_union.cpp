#include "poly/set_union.h"

#include <sstream>

#include "support/budget.h"
#include "support/error.h"

namespace pf::poly {

namespace {

/// The integer negation of one constraint, as a disjunction of
/// conjunction-halves: !(e >= 0) is {-e - 1 >= 0}; !(e == 0) is
/// {e - 1 >= 0} | {-e - 1 >= 0}.
std::vector<Constraint> negate(const Constraint& c) {
  std::vector<Constraint> out;
  if (c.is_equality) out.push_back(Constraint::ge0(c.expr.plus_const(-1)));
  out.push_back(Constraint::ge0((-c.expr).plus_const(-1)));
  return out;
}

}  // namespace

bool is_subset(const IntegerSet& a, const IntegerSet& b,
               const lp::IlpOptions& options) {
  PF_CHECK(a.dims() == b.dims());
  if (a.trivially_empty()) return true;
  for (const Constraint& c : b.constraints()) {
    for (const Constraint& half : negate(c)) {
      IntegerSet probe = a;
      probe.add_constraint(half);
      if (!probe.is_empty(options)) return false;
    }
  }
  return true;
}

SetUnion SetUnion::universe(std::size_t dims) {
  SetUnion u(dims);
  u.disjuncts_.push_back(IntegerSet::universe(dims));
  return u;
}

SetUnion SetUnion::wrap(IntegerSet s) {
  SetUnion u(s.dims());
  u.add_disjunct(std::move(s));
  return u;
}

void SetUnion::add_disjunct(IntegerSet s) {
  PF_CHECK(s.dims() == dims_);
  if (s.trivially_empty()) return;
  disjuncts_.push_back(std::move(s));
}

void SetUnion::unite(const SetUnion& o) {
  PF_CHECK(o.dims_ == dims_);
  for (const IntegerSet& d : o.disjuncts_) add_disjunct(d);
}

SetUnion SetUnion::intersect(const IntegerSet& o) const {
  PF_CHECK(o.dims() == dims_);
  SetUnion out(dims_);
  for (const IntegerSet& d : disjuncts_) {
    IntegerSet x = d;
    x.intersect(o);
    out.add_disjunct(std::move(x));
  }
  return out;
}

SetUnion SetUnion::intersect(const SetUnion& o) const {
  PF_CHECK(o.dims_ == dims_);
  SetUnion out(dims_);
  for (const IntegerSet& a : disjuncts_)
    for (const IntegerSet& b : o.disjuncts_) {
      support::budget_charge(support::BudgetSite::kFmeProject);
      IntegerSet x = a;
      x.intersect(b);
      out.add_disjunct(std::move(x));
    }
  return out;
}

SetUnion SetUnion::subtract(const IntegerSet& b) const {
  PF_CHECK(b.dims() == dims_);
  if (b.trivially_empty()) return *this;
  SetUnion out(dims_);
  for (const IntegerSet& a : disjuncts_) {
    // Union algebra can blow up quadratically in disjunct count, so it
    // burns fuel at the projection site alongside FME proper.
    support::budget_charge(support::BudgetSite::kFmeProject);
    // carry accumulates c_1 /\ ... /\ c_{i-1} on top of a.
    IntegerSet carry = a;
    for (const Constraint& c : b.constraints()) {
      for (const Constraint& half : negate(c)) {
        IntegerSet d = carry;
        d.add_constraint(half);
        out.add_disjunct(std::move(d));
      }
      carry.add_constraint(c);
      if (carry.trivially_empty()) break;  // a /\ prefix already empty
    }
    // If b has no constraints it is the universe and a vanishes whole.
  }
  return out;
}

SetUnion SetUnion::subtract(const SetUnion& o) const {
  PF_CHECK(o.dims_ == dims_);
  SetUnion out = *this;
  for (const IntegerSet& b : o.disjuncts_) out = out.subtract(b);
  return out;
}

SetUnion SetUnion::eliminate_dims(const std::vector<bool>& remove) const {
  PF_CHECK(remove.size() == dims_);
  std::size_t kept = 0;
  for (std::size_t d = 0; d < dims_; ++d)
    if (!remove[d]) ++kept;
  SetUnion out(kept);
  for (const IntegerSet& d : disjuncts_)
    out.add_disjunct(d.eliminate_dims(remove));
  return out;
}

SetUnion SetUnion::project_onto_prefix(std::size_t n) const {
  std::vector<bool> remove(dims_, false);
  for (std::size_t d = n; d < dims_; ++d) remove[d] = true;
  return eliminate_dims(remove);
}

SetUnion SetUnion::insert_dims(std::size_t pos, std::size_t count) const {
  SetUnion out(dims_ + count);
  for (const IntegerSet& d : disjuncts_)
    out.add_disjunct(d.insert_dims(pos, count));
  return out;
}

bool SetUnion::is_empty(const lp::IlpOptions& options) const {
  for (const IntegerSet& d : disjuncts_)
    if (!d.is_empty(options)) return false;
  return true;
}

bool SetUnion::contains(const IntVector& point) const {
  for (const IntegerSet& d : disjuncts_)
    if (d.contains(point)) return true;
  return false;
}

std::optional<IntVector> SetUnion::sample_point(
    const lp::IlpOptions& options) const {
  for (const IntegerSet& d : disjuncts_)
    if (auto p = d.sample_point(options)) return p;
  return std::nullopt;
}

void SetUnion::coalesce(const lp::IlpOptions& options) {
  std::vector<IntegerSet> live;
  live.reserve(disjuncts_.size());
  for (IntegerSet& d : disjuncts_)
    if (!d.is_empty(options)) live.push_back(std::move(d));

  // Drop any disjunct contained in another surviving one. On a tie
  // (mutual containment) the earlier disjunct wins, keeping the result
  // deterministic.
  std::vector<bool> dead(live.size(), false);
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < live.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (is_subset(live[j], live[i], options) &&
          !(j < i && is_subset(live[i], live[j], options)))
        dead[j] = true;
    }
  }
  disjuncts_.clear();
  for (std::size_t i = 0; i < live.size(); ++i)
    if (!dead[i]) disjuncts_.push_back(std::move(live[i]));
}

std::string SetUnion::to_string(const std::vector<std::string>& names) const {
  if (disjuncts_.empty()) return "{ }";
  std::ostringstream os;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i) os << " | ";
    os << disjuncts_[i].to_string(names);
  }
  return os.str();
}

}  // namespace pf::poly
