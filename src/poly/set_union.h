// SetUnion: a finite union of IntegerSet disjuncts over one positional
// space.
//
// IntegerSet is a *conjunction* of affine constraints, which is enough
// for dependence polyhedra but cannot express the results of set
// subtraction -- the core operation of value-based dataflow ("the reads
// fed by S minus the ones an intermediate write killed"). SetUnion is
// the standard remedy: a list of disjuncts closed under union,
// intersection and subtraction.
//
// Subtraction uses complement-and-distribute: for a single disjunct A
// and a subtrahend B = c_1 /\ ... /\ c_n,
//
//   A - B = union_i ( A /\ c_1 /\ ... /\ c_{i-1} /\ !c_i )
//
// where !(e >= 0) is (-e - 1 >= 0) over the integers and !(e == 0)
// splits into (e - 1 >= 0) | (-e - 1 >= 0). The pieces carved from one
// disjunct A are pairwise disjoint by construction (each pair disagrees
// on some c_i); pieces from different (possibly overlapping) disjuncts
// of a union need not be.
//
// Projection (eliminate_dims) maps Fourier-Motzkin over the disjuncts;
// like IntegerSet's, it is the rational projection, an overapproximation
// of the integer projection (exact whenever every eliminated variable
// has only +-1 coefficients, which covers everything the PolyLang
// frontend produces).
//
// coalesce() keeps the representation small: it drops ILP-empty
// disjuncts and disjuncts subsumed by another (A subset-of B iff
// A /\ !c is empty for every constraint c of B).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "poly/set.h"

namespace pf::poly {

/// Exact subset test between conjunctions: a is contained in b iff
/// intersecting a with the negation of any single constraint of b is
/// (integer-)empty. Conservative under ILP node caps: may return false
/// for a true containment, never true for a false one.
bool is_subset(const IntegerSet& a, const IntegerSet& b,
               const lp::IlpOptions& options = {});

class SetUnion {
 public:
  /// The empty union over a `dims`-dimensional space.
  explicit SetUnion(std::size_t dims) : dims_(dims) {}

  static SetUnion empty(std::size_t dims) { return SetUnion(dims); }
  static SetUnion universe(std::size_t dims);
  /// The union holding just `s` (dropped immediately if trivially empty).
  static SetUnion wrap(IntegerSet s);

  std::size_t dims() const { return dims_; }
  const std::vector<IntegerSet>& disjuncts() const { return disjuncts_; }
  std::size_t num_disjuncts() const { return disjuncts_.size(); }

  /// Add one disjunct (trivially empty sets are dropped on the spot).
  void add_disjunct(IntegerSet s);
  /// In-place union with another SetUnion over the same space.
  void unite(const SetUnion& o);

  SetUnion intersect(const IntegerSet& o) const;
  SetUnion intersect(const SetUnion& o) const;

  /// this - b, exact over the integers (complement-and-distribute).
  SetUnion subtract(const IntegerSet& b) const;
  /// this - o, subtracting each of o's disjuncts in turn.
  SetUnion subtract(const SetUnion& o) const;

  /// Fourier-Motzkin eliminate every dim with remove[d] == true from
  /// every disjunct (rational projection, see header comment).
  SetUnion eliminate_dims(const std::vector<bool>& remove) const;
  /// Keep only dims [0, n).
  SetUnion project_onto_prefix(std::size_t n) const;
  /// Insert `count` unconstrained dims at `pos` in every disjunct.
  SetUnion insert_dims(std::size_t pos, std::size_t count) const;

  /// No disjunct contains an integer point. Conservative under node
  /// caps (false means "may be non-empty"), like IntegerSet::is_empty.
  bool is_empty(const lp::IlpOptions& options = {}) const;
  /// Syntactically empty: the disjunct list is empty.
  bool trivially_empty() const { return disjuncts_.empty(); }

  /// Point membership: contained in any disjunct.
  bool contains(const IntVector& point) const;

  /// Any integer point of any disjunct, if one is found.
  std::optional<IntVector> sample_point(const lp::IlpOptions& options = {}) const;

  /// Compact the representation: drop ILP-empty disjuncts, then drop
  /// disjuncts subsumed by a remaining one. Does not change the set.
  void coalesce(const lp::IlpOptions& options = {});

  std::string to_string(const std::vector<std::string>& names = {}) const;

 private:
  std::size_t dims_;
  std::vector<IntegerSet> disjuncts_;
};

}  // namespace pf::poly
