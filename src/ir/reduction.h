// Shared vocabulary for reduction handling: the associative/commutative
// operators the pipeline recognizes and the record a relaxed reduction
// self-dependence carries through the schedule.
//
// This lives in ir/ (not analysis/) on purpose: the detection pass
// (analysis/reductions.*), the scheduler (sched/pluto.*), codegen
// (codegen/*) and the verifier (verify/*) all exchange these records,
// and ir/ is the one layer below all of them. The verifier deliberately
// re-derives reduction-ness with its own matcher (verify/reductions.cpp)
// instead of trusting these records -- they are claims, not proofs.
#pragma once

#include <cstddef>

namespace pf::ir {

/// The operator of a recognized reduction `x = x op e` (or
/// `x = fmin(x, e)` / `x = fmax(x, e)`). All four are associative and
/// commutative over doubles modulo rounding; relaxing the self-carried
/// dependence reorders the accumulation chain, which is exact for
/// integer-valued data and a rounding-order change otherwise.
enum class ReductionOp { kSum, kProd, kMin, kMax };

/// Display name ("+", "*", "min", "max"). The min/max names double as
/// the OpenMP reduction-identifier spelling, so this is also what
/// cemit prints inside `reduction(op:var)` clauses.
inline const char* to_string(ReductionOp op) {
  switch (op) {
    case ReductionOp::kSum:
      return "+";
    case ReductionOp::kProd:
      return "*";
    case ReductionOp::kMin:
      return "min";
    case ReductionOp::kMax:
      return "max";
  }
  return "?";
}

/// One reduction self-dependence the scheduler was allowed to ignore.
/// Recorded on the Schedule so codegen can attach the matching OpenMP
/// clause and the verifier can re-prove (or reject) the relaxation.
struct ReductionDep {
  std::size_t dep_id = 0;    // index into DependenceGraph::deps()
  std::size_t stmt = 0;      // the accumulation statement (src == dst)
  std::size_t array_id = 0;  // the accumulator array
  ReductionOp op = ReductionOp::kSum;
};

}  // namespace pf::ir
