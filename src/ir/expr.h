// Statement-body expression trees.
//
// A statement in a SCoP is `lhs_array[affine subs] = body;` where body is a
// real arithmetic expression over array reads, affine values of iterators/
// parameters, numeric literals and a few math calls. The tree drives three
// consumers: access extraction (dependence analysis), the interpreter, and
// the C emitter.
//
// Trees are immutable and shared (ExprPtr = shared_ptr<const Expr>).
// Authoring-time access nodes carry name-based subscripts; Statement
// finalization produces a resolved copy with positional subscripts so hot
// paths (interpretation) never touch name maps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/named_affine.h"

namespace pf::ir {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp { kAdd, kSub, kMul, kDiv };

const char* to_string(BinOp op);

struct Expr {
  enum class Kind { kNumber, kAffine, kAccess, kBinary, kUnaryMinus, kCall };

  Kind kind;

  // kNumber
  double number = 0.0;

  // kAffine: the (integer) value of an affine form, used as a double.
  NamedAffine affine;
  poly::AffineExpr affine_resolved;  // valid after Statement finalization

  // kAccess
  std::size_t array_id = 0;
  std::vector<NamedAffine> subscripts;
  std::vector<poly::AffineExpr> subscripts_resolved;  // after finalization

  // kBinary
  BinOp op = BinOp::kAdd;
  ExprPtr lhs, rhs;

  // kUnaryMinus
  ExprPtr operand;

  // kCall (sqrt, fabs, exp, ...)
  std::string callee;
  std::vector<ExprPtr> args;
};

ExprPtr make_number(double v);
ExprPtr make_affine(NamedAffine a);
ExprPtr make_access(std::size_t array_id, std::vector<NamedAffine> subs);
ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_unary_minus(ExprPtr operand);
ExprPtr make_call(std::string callee, std::vector<ExprPtr> args);

/// Resolve all name-based affine payloads against the variable order
/// `names`, returning a structurally identical tree with the *_resolved
/// fields populated.
ExprPtr resolve_expr(const ExprPtr& e, const std::vector<std::string>& names);

/// Collect the access nodes of a (sub)tree in evaluation order.
void collect_accesses(const ExprPtr& e, std::vector<const Expr*>* out);

/// Render as source-like text; array names looked up via callback.
std::string expr_to_string(const ExprPtr& e,
                           const std::vector<std::string>& array_names);

}  // namespace pf::ir
