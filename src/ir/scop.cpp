#include "ir/scop.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace pf::ir {

std::optional<std::size_t> Scop::param_index(const std::string& name) const {
  const auto it = std::find(params_.begin(), params_.end(), name);
  if (it == params_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - params_.begin());
}

std::size_t Scop::add_array(Array a) {
  for (const Array& existing : arrays_)
    PF_CHECK_MSG(existing.name != a.name,
                 "duplicate array name '" << a.name << "'");
  arrays_.push_back(std::move(a));
  return arrays_.size() - 1;
}

std::vector<std::string> Scop::array_names() const {
  std::vector<std::string> names;
  names.reserve(arrays_.size());
  for (const Array& a : arrays_) names.push_back(a.name);
  return names;
}

int Scop::add_loop(Loop l) {
  PF_CHECK(l.parent >= -1 && l.parent < static_cast<int>(loops_.size()));
  loops_.push_back(std::move(l));
  return static_cast<int>(loops_.size()) - 1;
}

std::size_t Scop::common_loop_depth(const Statement& a,
                                    const Statement& b) const {
  const auto& ca = a.loop_chain();
  const auto& cb = b.loop_chain();
  std::size_t d = 0;
  while (d < ca.size() && d < cb.size() && ca[d] == cb[d]) ++d;
  return d;
}

std::vector<std::string> Scop::space_names(const Statement& s) const {
  std::vector<std::string> names = s.iterators();
  names.insert(names.end(), params_.begin(), params_.end());
  return names;
}

std::string Scop::to_string() const {
  std::ostringstream os;
  os << "scop " << name_ << "(" << join(params_, ", ") << ")\n";
  const std::vector<std::string> arrays = array_names();

  // Emit statements in order, opening/closing loops as the chain changes.
  std::vector<int> open;  // currently open loop ids
  auto close_to = [&](std::size_t depth) {
    while (open.size() > depth) {
      open.pop_back();
      os << indent(open.size()) << "}\n";
    }
  };

  for (const Statement& s : stmts_) {
    const auto& chain = s.loop_chain();
    // Find how much of the open chain is shared.
    std::size_t shared = 0;
    while (shared < open.size() && shared < chain.size() &&
           open[shared] == chain[shared])
      ++shared;
    close_to(shared);
    for (std::size_t d = shared; d < chain.size(); ++d) {
      const Loop& l = loops_[static_cast<std::size_t>(chain[d])];
      os << indent(open.size()) << "for (" << l.iterator << " = "
         << l.lower.to_string() << " .. " << l.upper.to_string() << ") {\n";
      open.push_back(chain[d]);
    }
    const Access& w = s.write();
    os << indent(open.size()) << s.name() << ": " << arrays[w.array_id];
    const std::vector<std::string> names = space_names(s);
    for (const poly::AffineExpr& sub : w.subscripts)
      os << "[" << sub.to_string(names) << "]";
    os << " = " << expr_to_string(s.body(), arrays) << ";\n";
  }
  close_to(0);
  return os.str();
}

}  // namespace pf::ir
