// Name-based affine expressions for program authoring.
//
// The polyhedral layers (poly::AffineExpr) are positional; when *writing*
// programs (builder API or PolyLang frontend) it is far more convenient to
// say `i + 2*N - 1` without tracking dimension layouts. NamedAffine keeps
// coefficients per variable name and is resolved to a positional
// poly::AffineExpr once the enclosing statement's variable order is known.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "poly/affine.h"

namespace pf::ir {

class NamedAffine {
 public:
  NamedAffine() : const_(0) {}
  // NOLINTNEXTLINE(google-explicit-constructor): constants embed naturally.
  NamedAffine(i64 constant) : const_(constant) {}

  static NamedAffine var(const std::string& name) {
    NamedAffine e;
    e.coeffs_[name] = 1;
    return e;
  }

  i64 coeff(const std::string& name) const {
    auto it = coeffs_.find(name);
    return it == coeffs_.end() ? 0 : it->second;
  }
  i64 const_term() const { return const_; }
  const std::map<std::string, i64>& coeffs() const { return coeffs_; }

  bool is_constant() const;

  NamedAffine operator+(const NamedAffine& o) const;
  NamedAffine operator-(const NamedAffine& o) const;
  NamedAffine operator-() const;
  NamedAffine operator*(i64 s) const;
  NamedAffine& operator+=(const NamedAffine& o) { return *this = *this + o; }
  NamedAffine& operator-=(const NamedAffine& o) { return *this = *this - o; }

  bool operator==(const NamedAffine& o) const {
    return const_ == o.const_ && coeffs_ == o.coeffs_;
  }

  /// Resolve against an ordered variable list; every referenced name must
  /// appear in `names` (unknown names throw with a clear message).
  poly::AffineExpr resolve(const std::vector<std::string>& names) const;

  std::string to_string() const;

 private:
  std::map<std::string, i64> coeffs_;  // name -> coefficient (nonzero kept)
  i64 const_;
};

inline NamedAffine operator*(i64 s, const NamedAffine& e) { return e * s; }
inline NamedAffine operator+(i64 c, const NamedAffine& e) {
  return NamedAffine(c) + e;
}
inline NamedAffine operator-(i64 c, const NamedAffine& e) {
  return NamedAffine(c) - e;
}

}  // namespace pf::ir
