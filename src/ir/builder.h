// ScopBuilder: the programmatic authoring API for SCoPs.
//
// Mirrors the textual structure of an affine loop nest:
//
//   ScopBuilder b("gemver", {"N"});
//   const auto N = ScopBuilder::var("N"), i = ScopBuilder::var("i"),
//              j = ScopBuilder::var("j");
//   const std::size_t A = b.array("A", {N, N});
//   const std::size_t x = b.array("x", {N});
//   b.for_loop("i", 0, N - 1);
//     b.for_loop("j", 0, N - 1);
//       b.stmt(x, {i}, read(x, {i}) + read(A, {j, i}) * num(2.0));
//     b.end_loop();
//   b.end_loop();
//   ir::Scop scop = b.build();
//
// The expression helpers (read/num/aff and overloaded operators on
// ExprPtr) live at the bottom of this header.
#pragma once

#include <string>
#include <vector>

#include "ir/scop.h"

namespace pf::ir {

/// expr >= 0 (or == 0) over named variables; produced by the comparison
/// sugar below and consumed by ScopBuilder.
struct NamedConstraint {
  NamedAffine expr;
  bool is_equality = false;

  /// a == b (NamedAffine::operator== is value equality, so equality
  /// constraints use this named builder instead of operator sugar).
  static NamedConstraint equals(const NamedAffine& a, const NamedAffine& b) {
    return NamedConstraint{a - b, true};
  }
};

inline NamedConstraint operator>=(const NamedAffine& a, const NamedAffine& b) {
  return NamedConstraint{a - b, false};
}
inline NamedConstraint operator<=(const NamedAffine& a, const NamedAffine& b) {
  return NamedConstraint{b - a, false};
}

class ScopBuilder {
 public:
  ScopBuilder(std::string name, std::vector<std::string> params);

  /// NamedAffine variable reference (parameter or iterator).
  static NamedAffine var(const std::string& name) {
    return NamedAffine::var(name);
  }

  /// Add a parameter constraint, e.g. b.context(var("N") >= 4).
  void context(const NamedConstraint& c);

  /// Declare an array with per-dimension extents over the parameters.
  /// `is_local` marks a scop-local scratch array (PolyLang `local array`):
  /// no meaningful initial contents, no live-out role -- consumed only by
  /// the `--lint` value-based dataflow checks.
  std::size_t array(const std::string& name, std::vector<NamedAffine> extents,
                    bool is_local = false);

  /// Open a loop `iterator = lower .. upper` (inclusive bounds, step 1).
  /// Bounds may reference parameters and enclosing iterators.
  void for_loop(const std::string& iterator, NamedAffine lower,
                NamedAffine upper);
  void end_loop();

  /// Open a guard scope: every statement created until the matching
  /// end_guard() additionally satisfies `c` (models `if` conditions).
  void begin_guard(const NamedConstraint& c);
  void end_guard();

  /// Add statement `array[subs] = body;` at the current nesting. Returns
  /// the statement index. A name is auto-assigned (S1, S2, ...) unless
  /// given.
  std::size_t stmt(std::size_t array_id, std::vector<NamedAffine> subscripts,
                   ExprPtr body, std::string name = "");

  /// Finish; validates structure and returns the Scop.
  Scop build();

 private:
  std::vector<std::string> current_names() const;  // [open iters, params]

  Scop scop_;
  std::vector<int> open_;                  // open loop ids, outermost first
  std::vector<NamedConstraint> guards_;    // active guard stack
  std::size_t next_stmt_ = 1;
  bool built_ = false;
};

// ---------------------------------------------------------------------------
// Expression-building sugar.
// ---------------------------------------------------------------------------

/// Numeric literal.
inline ExprPtr num(double v) { return make_number(v); }
/// The value of an affine form (iterators/parameters) as a double.
inline ExprPtr aff(const NamedAffine& a) { return make_affine(a); }
/// Array read access.
inline ExprPtr read(std::size_t array_id, std::vector<NamedAffine> subs) {
  return make_access(array_id, std::move(subs));
}
/// Math call.
inline ExprPtr call(std::string name, std::vector<ExprPtr> args) {
  return make_call(std::move(name), std::move(args));
}

inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kMul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return make_binary(BinOp::kDiv, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a) { return make_unary_minus(std::move(a)); }

}  // namespace pf::ir
