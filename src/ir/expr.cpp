#include "ir/expr.h"

#include <sstream>

namespace pf::ir {

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
  }
  return "?";
}

ExprPtr make_number(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kNumber;
  e->number = v;
  return e;
}

ExprPtr make_affine(NamedAffine a) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kAffine;
  e->affine = std::move(a);
  return e;
}

ExprPtr make_access(std::size_t array_id, std::vector<NamedAffine> subs) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kAccess;
  e->array_id = array_id;
  e->subscripts = std::move(subs);
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  PF_CHECK(lhs && rhs);
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr make_unary_minus(ExprPtr operand) {
  PF_CHECK(operand);
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kUnaryMinus;
  e->operand = std::move(operand);
  return e;
}

ExprPtr make_call(std::string callee, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::kCall;
  e->callee = std::move(callee);
  e->args = std::move(args);
  return e;
}

ExprPtr resolve_expr(const ExprPtr& e, const std::vector<std::string>& names) {
  PF_CHECK(e);
  auto out = std::make_shared<Expr>(*e);
  switch (e->kind) {
    case Expr::Kind::kNumber:
      break;
    case Expr::Kind::kAffine:
      out->affine_resolved = e->affine.resolve(names);
      break;
    case Expr::Kind::kAccess:
      out->subscripts_resolved.clear();
      for (const NamedAffine& s : e->subscripts)
        out->subscripts_resolved.push_back(s.resolve(names));
      break;
    case Expr::Kind::kBinary:
      out->lhs = resolve_expr(e->lhs, names);
      out->rhs = resolve_expr(e->rhs, names);
      break;
    case Expr::Kind::kUnaryMinus:
      out->operand = resolve_expr(e->operand, names);
      break;
    case Expr::Kind::kCall:
      out->args.clear();
      for (const ExprPtr& a : e->args) out->args.push_back(resolve_expr(a, names));
      break;
  }
  return out;
}

void collect_accesses(const ExprPtr& e, std::vector<const Expr*>* out) {
  PF_CHECK(e && out);
  switch (e->kind) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kAffine:
      break;
    case Expr::Kind::kAccess:
      out->push_back(e.get());
      break;
    case Expr::Kind::kBinary:
      collect_accesses(e->lhs, out);
      collect_accesses(e->rhs, out);
      break;
    case Expr::Kind::kUnaryMinus:
      collect_accesses(e->operand, out);
      break;
    case Expr::Kind::kCall:
      for (const ExprPtr& a : e->args) collect_accesses(a, out);
      break;
  }
}

namespace {

int precedence(const Expr& e) {
  if (e.kind != Expr::Kind::kBinary) return 3;
  switch (e.op) {
    case BinOp::kAdd:
    case BinOp::kSub:
      return 1;
    case BinOp::kMul:
    case BinOp::kDiv:
      return 2;
  }
  return 1;
}

void emit(const ExprPtr& e, const std::vector<std::string>& arrays,
          std::ostringstream& os) {
  switch (e->kind) {
    case Expr::Kind::kNumber: {
      std::ostringstream num;
      num << e->number;
      os << num.str();
      break;
    }
    case Expr::Kind::kAffine:
      os << "(" << e->affine.to_string() << ")";
      break;
    case Expr::Kind::kAccess: {
      PF_CHECK(e->array_id < arrays.size());
      os << arrays[e->array_id];
      for (const NamedAffine& s : e->subscripts) os << "[" << s.to_string() << "]";
      break;
    }
    case Expr::Kind::kBinary: {
      const int p = precedence(*e);
      const bool pl = precedence(*e->lhs) < p;
      // Right operand needs parens at equal precedence for - and /.
      const bool pr = precedence(*e->rhs) < p ||
                      (precedence(*e->rhs) == p &&
                       (e->op == BinOp::kSub || e->op == BinOp::kDiv));
      if (pl) os << "(";
      emit(e->lhs, arrays, os);
      if (pl) os << ")";
      os << " " << to_string(e->op) << " ";
      if (pr) os << "(";
      emit(e->rhs, arrays, os);
      if (pr) os << ")";
      break;
    }
    case Expr::Kind::kUnaryMinus:
      os << "-(";
      emit(e->operand, arrays, os);
      os << ")";
      break;
    case Expr::Kind::kCall: {
      os << e->callee << "(";
      for (std::size_t i = 0; i < e->args.size(); ++i) {
        if (i != 0) os << ", ";
        emit(e->args[i], arrays, os);
      }
      os << ")";
      break;
    }
  }
}

}  // namespace

std::string expr_to_string(const ExprPtr& e,
                           const std::vector<std::string>& array_names) {
  std::ostringstream os;
  emit(e, array_names, os);
  return os.str();
}

}  // namespace pf::ir
