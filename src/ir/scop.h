// The SCoP (Static Control Part) intermediate representation.
//
// A Scop is the unit the whole pipeline operates on: global parameters
// with a context, arrays, the original loop structure, and the statements
// with their iteration domains, access functions and body expressions.
//
// Space conventions used everywhere downstream:
//  * a statement-local space is [iterators (outermost first), parameters],
//  * the context and array extents live in the parameter-only space.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/expr.h"
#include "poly/set.h"

namespace pf::ir {

/// A (possibly parametric) rectangular array.
struct Array {
  std::string name;
  /// Extent per dimension, an affine form over the parameters.
  std::vector<NamedAffine> extents;
  /// Declared `local array`: fully defined inside the scop, with no
  /// meaningful initial contents and no live-out role. Storage and
  /// execution treat local arrays like any other; only the `--lint`
  /// value-based dataflow checks consume the flag (reads of cells no
  /// write defined, and writes nothing ever reads, are errors there).
  bool is_local = false;

  std::size_t rank() const { return extents.size(); }
};

/// One affine array reference of a statement.
struct Access {
  std::size_t array_id = 0;
  /// Positional over the statement space [iters, params].
  std::vector<poly::AffineExpr> subscripts;
  bool is_write = false;
};

/// A loop of the *original* program structure (used for lexicographic
/// precedence in dependence analysis and for printing the source).
struct Loop {
  std::string iterator;
  NamedAffine lower;  // inclusive
  NamedAffine upper;  // inclusive
  int parent = -1;    // index of enclosing loop, -1 at top level
};

class Scop;

class Statement {
 public:
  Statement(std::size_t index, std::string name,
            std::vector<std::string> iterators, std::vector<int> loop_chain,
            poly::IntegerSet domain, std::vector<Access> accesses,
            ExprPtr body)
      : index_(index),
        name_(std::move(name)),
        iterators_(std::move(iterators)),
        loop_chain_(std::move(loop_chain)),
        domain_(std::move(domain)),
        accesses_(std::move(accesses)),
        body_(std::move(body)) {}

  std::size_t index() const { return index_; }
  const std::string& name() const { return name_; }

  /// Loop nest depth ("dimensionality" in the paper's terms).
  std::size_t dim() const { return iterators_.size(); }
  const std::vector<std::string>& iterators() const { return iterators_; }
  /// Original enclosing loops, outermost first (indices into Scop::loops()).
  const std::vector<int>& loop_chain() const { return loop_chain_; }

  /// Iteration domain over [iterators, params].
  const poly::IntegerSet& domain() const { return domain_; }

  /// accesses()[0] is the write (statement lhs); the rest are reads in
  /// evaluation order.
  const std::vector<Access>& accesses() const { return accesses_; }
  const Access& write() const { return accesses_.front(); }

  /// Resolved body expression (rhs).
  const ExprPtr& body() const { return body_; }

 private:
  std::size_t index_;
  std::string name_;
  std::vector<std::string> iterators_;
  std::vector<int> loop_chain_;
  poly::IntegerSet domain_;
  std::vector<Access> accesses_;
  ExprPtr body_;
};

class Scop {
 public:
  Scop(std::string name, std::vector<std::string> params)
      : name_(std::move(name)),
        params_(std::move(params)),
        context_(params_.size()) {}

  const std::string& name() const { return name_; }

  const std::vector<std::string>& params() const { return params_; }
  std::size_t num_params() const { return params_.size(); }
  std::optional<std::size_t> param_index(const std::string& name) const;

  /// Constraints on parameter values (e.g. N >= 4), over the param space.
  const poly::IntegerSet& context() const { return context_; }
  void add_context(poly::Constraint c) { context_.add_constraint(std::move(c)); }

  const std::vector<Array>& arrays() const { return arrays_; }
  std::size_t add_array(Array a);
  const Array& array(std::size_t id) const { return arrays_.at(id); }
  std::vector<std::string> array_names() const;

  const std::vector<Loop>& loops() const { return loops_; }
  int add_loop(Loop l);

  const std::vector<Statement>& statements() const { return stmts_; }
  std::size_t num_statements() const { return stmts_.size(); }
  const Statement& statement(std::size_t i) const { return stmts_.at(i); }
  void add_statement(Statement s) { stmts_.push_back(std::move(s)); }

  /// Number of shared enclosing loops of two statements in the original
  /// program (length of the common loop_chain prefix).
  std::size_t common_loop_depth(const Statement& a, const Statement& b) const;

  /// Variable names of a statement's space: [iterators, params].
  std::vector<std::string> space_names(const Statement& s) const;

  /// Pretty-print the original program (loops reconstructed from the loop
  /// table; statements in textual order).
  std::string to_string() const;

 private:
  std::string name_;
  std::vector<std::string> params_;
  poly::IntegerSet context_;
  std::vector<Array> arrays_;
  std::vector<Loop> loops_;
  std::vector<Statement> stmts_;
};

}  // namespace pf::ir
