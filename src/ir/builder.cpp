#include "ir/builder.h"

#include <algorithm>

namespace pf::ir {

ScopBuilder::ScopBuilder(std::string name, std::vector<std::string> params)
    : scop_(std::move(name), std::move(params)) {
  // Parameter names must be unique.
  auto p = scop_.params();
  std::sort(p.begin(), p.end());
  PF_CHECK_MSG(std::adjacent_find(p.begin(), p.end()) == p.end(),
               "duplicate parameter names");
}

void ScopBuilder::context(const NamedConstraint& c) {
  const poly::AffineExpr e = c.expr.resolve(scop_.params());
  scop_.add_context(c.is_equality ? poly::Constraint::eq0(e)
                                  : poly::Constraint::ge0(e));
}

std::size_t ScopBuilder::array(const std::string& name,
                               std::vector<NamedAffine> extents,
                               bool is_local) {
  for (const NamedAffine& e : extents)
    e.resolve(scop_.params());  // validates: extents over params only
  return scop_.add_array(Array{name, std::move(extents), is_local});
}

void ScopBuilder::for_loop(const std::string& iterator, NamedAffine lower,
                           NamedAffine upper) {
  PF_CHECK_MSG(!built_, "builder already consumed");
  // Iterator must not shadow a parameter or an open iterator.
  PF_CHECK_MSG(!scop_.param_index(iterator).has_value(),
               "loop iterator '" << iterator << "' shadows a parameter");
  for (const int id : open_)
    PF_CHECK_MSG(
        scop_.loops()[static_cast<std::size_t>(id)].iterator != iterator,
        "loop iterator '" << iterator << "' shadows an open loop");
  // Bounds must be expressible over enclosing iterators and params; this
  // resolve() throws on unknown names.
  const std::vector<std::string> names = current_names();
  lower.resolve(names);
  upper.resolve(names);

  Loop l;
  l.iterator = iterator;
  l.lower = std::move(lower);
  l.upper = std::move(upper);
  l.parent = open_.empty() ? -1 : open_.back();
  open_.push_back(scop_.add_loop(std::move(l)));
}

void ScopBuilder::end_loop() {
  PF_CHECK_MSG(!open_.empty(), "end_loop with no open loop");
  open_.pop_back();
}

void ScopBuilder::begin_guard(const NamedConstraint& c) {
  c.expr.resolve(current_names());  // validate names now
  guards_.push_back(c);
}

void ScopBuilder::end_guard() {
  PF_CHECK_MSG(!guards_.empty(), "end_guard with no open guard");
  guards_.pop_back();
}

std::vector<std::string> ScopBuilder::current_names() const {
  std::vector<std::string> names;
  for (const int id : open_)
    names.push_back(scop_.loops()[static_cast<std::size_t>(id)].iterator);
  names.insert(names.end(), scop_.params().begin(), scop_.params().end());
  return names;
}

std::size_t ScopBuilder::stmt(std::size_t array_id,
                              std::vector<NamedAffine> subscripts,
                              ExprPtr body, std::string name) {
  PF_CHECK_MSG(!built_, "builder already consumed");
  PF_CHECK_MSG(array_id < scop_.arrays().size(), "unknown array id");
  PF_CHECK_MSG(body != nullptr, "statement body required");
  PF_CHECK_MSG(subscripts.size() == scop_.array(array_id).rank(),
               "array '" << scop_.array(array_id).name << "' has rank "
                         << scop_.array(array_id).rank() << ", got "
                         << subscripts.size() << " subscripts");
  if (name.empty()) name = "S" + std::to_string(next_stmt_);
  ++next_stmt_;

  const std::vector<std::string> names = current_names();
  const std::size_t depth = open_.size();

  // Iterators and loop chain.
  std::vector<std::string> iterators(names.begin(),
                                     names.begin() + static_cast<long>(depth));
  std::vector<int> chain = open_;

  // Domain: bounds of each open loop plus all active guards.
  poly::IntegerSet domain(names.size());
  for (const int id : open_) {
    const Loop& l = scop_.loops()[static_cast<std::size_t>(id)];
    const poly::AffineExpr it = NamedAffine::var(l.iterator).resolve(names);
    domain.add_constraint(poly::Constraint::ge(it, l.lower.resolve(names)));
    domain.add_constraint(poly::Constraint::le(it, l.upper.resolve(names)));
  }
  for (const NamedConstraint& g : guards_) {
    const poly::AffineExpr e = g.expr.resolve(names);
    domain.add_constraint(g.is_equality ? poly::Constraint::eq0(e)
                                        : poly::Constraint::ge0(e));
  }

  // Accesses: write first, then reads in evaluation order.
  std::vector<Access> accesses;
  {
    Access w;
    w.array_id = array_id;
    w.is_write = true;
    for (const NamedAffine& s : subscripts)
      w.subscripts.push_back(s.resolve(names));
    accesses.push_back(std::move(w));
  }
  std::vector<const Expr*> nodes;
  collect_accesses(body, &nodes);
  for (const Expr* n : nodes) {
    PF_CHECK_MSG(n->array_id < scop_.arrays().size(), "unknown array in body");
    PF_CHECK_MSG(n->subscripts.size() == scop_.array(n->array_id).rank(),
                 "read of array '" << scop_.array(n->array_id).name
                                   << "' with wrong subscript count");
    Access r;
    r.array_id = n->array_id;
    r.is_write = false;
    for (const NamedAffine& s : n->subscripts)
      r.subscripts.push_back(s.resolve(names));
    accesses.push_back(std::move(r));
  }

  const std::size_t index = scop_.num_statements();
  scop_.add_statement(Statement(index, std::move(name), std::move(iterators),
                                std::move(chain), std::move(domain),
                                std::move(accesses),
                                resolve_expr(body, names)));
  return index;
}

Scop ScopBuilder::build() {
  PF_CHECK_MSG(!built_, "builder already consumed");
  PF_CHECK_MSG(open_.empty(), "build() with " << open_.size()
                                              << " unclosed loops");
  PF_CHECK_MSG(guards_.empty(), "build() with open guard scopes");
  PF_CHECK_MSG(scop_.num_statements() > 0, "empty scop");
  built_ = true;
  return std::move(scop_);
}

}  // namespace pf::ir
