#include "ir/named_affine.h"

#include <algorithm>
#include <sstream>

namespace pf::ir {

bool NamedAffine::is_constant() const { return coeffs_.empty(); }

NamedAffine NamedAffine::operator+(const NamedAffine& o) const {
  NamedAffine r = *this;
  r.const_ = checked_add(r.const_, o.const_);
  for (const auto& [name, c] : o.coeffs_) {
    const i64 v = checked_add(r.coeff(name), c);
    if (v == 0)
      r.coeffs_.erase(name);
    else
      r.coeffs_[name] = v;
  }
  return r;
}

NamedAffine NamedAffine::operator-(const NamedAffine& o) const {
  return *this + (-o);
}

NamedAffine NamedAffine::operator-() const {
  NamedAffine r;
  r.const_ = checked_neg(const_);
  for (const auto& [name, c] : coeffs_) r.coeffs_[name] = checked_neg(c);
  return r;
}

NamedAffine NamedAffine::operator*(i64 s) const {
  NamedAffine r;
  if (s == 0) return r;
  r.const_ = checked_mul(const_, s);
  for (const auto& [name, c] : coeffs_) r.coeffs_[name] = checked_mul(c, s);
  return r;
}

poly::AffineExpr NamedAffine::resolve(
    const std::vector<std::string>& names) const {
  poly::AffineExpr e(names.size(), const_);
  for (const auto& [name, c] : coeffs_) {
    const auto it = std::find(names.begin(), names.end(), name);
    PF_CHECK_MSG(it != names.end(),
                 "unknown variable '" << name << "' in affine expression "
                                      << to_string());
    e.set_coeff(static_cast<std::size_t>(it - names.begin()), c);
  }
  return e;
}

std::string NamedAffine::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, c] : coeffs_) {
    if (first) {
      if (c == -1)
        os << "-";
      else if (c != 1)
        os << c << "*";
      os << name;
      first = false;
    } else {
      os << (c > 0 ? " + " : " - ");
      if (c != 1 && c != -1) os << abs_i64(c) << "*";
      os << name;
    }
  }
  if (first)
    os << const_;
  else if (const_ != 0)
    os << (const_ > 0 ? " + " : " - ") << abs_i64(const_);
  return os.str();
}

}  // namespace pf::ir
