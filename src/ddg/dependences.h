// Exact array dependence analysis over the polyhedral IR.
//
// For every pair of accesses to the same array (at least one a write --
// plus read/read pairs, kept separately as *input* (RAR) dependences,
// which the paper's wisefuse uses for reuse), one dependence polyhedron is
// built per lexicographic-precedence case:
//
//   space  [src iterators, dst iterators, parameters]
//   constraints:
//     src domain, dst domain, parameter context,
//     access equality  A_src(s) == A_dst(t),
//     precedence case `depth` d:
//       d <  common nest depth: s[0..d) == t[0..d) and s[d] < t[d]
//       d == common nest depth: s[0..d) == t[0..d) and src textually
//                               precedes dst (loop-independent case)
//
// Cases whose polyhedron has no integer point are discarded (branch-and-
// bound emptiness; a capped search conservatively keeps the dependence).
// This is memory-based (not value-based) analysis -- the same choice Pluto
// makes; extra dependences only constrain, never break, the transformation.
#pragma once

#include <string>
#include <vector>

#include "ddg/graph.h"
#include "ir/scop.h"

namespace pf::ddg {

enum class DepKind { kFlow, kAnti, kOutput, kInput };

const char* to_string(DepKind k);

struct Dependence {
  std::size_t id = 0;
  std::size_t src = 0, dst = 0;                // statement indices
  std::size_t src_access = 0, dst_access = 0;  // indices into accesses()
  DepKind kind = DepKind::kFlow;
  /// Precedence case: depth < common nest depth means "carried by original
  /// loop `depth`"; depth == common depth is the loop-independent case.
  std::size_t depth = 0;
  std::size_t src_dim = 0, dst_dim = 0, num_params = 0;
  poly::IntegerSet poly{0};
  /// True when the dependence was not proven (its emptiness test ran out
  /// of budget or hit an injected fault) and is *assumed* to exist -- a
  /// sound over-approximation: extra dependences only constrain the
  /// schedule. See src/support/budget.h.
  bool assumed = false;

  /// Lift a statement-space affine form ([iters, params]) of the source
  /// (resp. destination) statement into the dependence space.
  poly::AffineExpr lift_src(const poly::AffineExpr& e) const;
  poly::AffineExpr lift_dst(const poly::AffineExpr& e) const;

  bool is_real() const { return kind != DepKind::kInput; }
};

struct AnalysisOptions {
  lp::IlpOptions ilp;
  /// Also compute read/read (RAR) dependences. On by default -- wisefuse
  /// needs them.
  bool compute_input_deps = true;
  /// Worker threads for the statement-pair fan-out. 0 means
  /// support::default_jobs() (--jobs=N / POLYFUSE_JOBS / hardware);
  /// 1 runs the exact serial path. Results are merged in deterministic
  /// (src, dst, access-pair, depth) order, so the graph -- dependence
  /// ids included -- is byte-identical at every thread count.
  std::size_t jobs = 0;
};

class DependenceGraph {
 public:
  /// Run the analysis. The scop must outlive the graph.
  static DependenceGraph analyze(const ir::Scop& scop,
                                 const AnalysisOptions& options = {});

  const ir::Scop& scop() const { return *scop_; }

  /// Flow/anti/output dependences -- the edges of the DDG proper.
  const std::vector<Dependence>& deps() const { return deps_; }
  /// Input (RAR) dependences, kept out of the DDG (paper, Section 2.3).
  const std::vector<Dependence>& rar_deps() const { return rar_; }

  /// True if some real dependence runs src -> dst.
  bool has_edge(std::size_t src, std::size_t dst) const;
  /// True if statements a and b share any dependence (real, either
  /// direction) or input dependence: the paper's reuse test
  /// `adj(i,j) = 1 or RARadj(i,j) = 1`.
  bool has_reuse_edge(std::size_t a, std::size_t b) const;

  /// Statement-level edges of the real-dependence graph, deduplicated.
  std::vector<Edge> stmt_edges() const;

  /// SCCs of the real-dependence graph (Kosaraju, ids in topological
  /// order of the condensation).
  SccResult sccs() const;

  std::string to_string() const;

 private:
  const ir::Scop* scop_ = nullptr;
  std::vector<Dependence> deps_;
  std::vector<Dependence> rar_;
  std::vector<std::vector<bool>> adj_;      // adj_[src][dst] over real deps
  std::vector<std::vector<bool>> reuse_;    // symmetric: real or RAR
};

}  // namespace pf::ddg
