#include "ddg/graph.h"

#include <algorithm>
#include <queue>

#include "support/error.h"

namespace pf::ddg {

namespace {

std::vector<std::vector<std::size_t>> adjacency(std::size_t n,
                                                const std::vector<Edge>& edges,
                                                bool reversed) {
  std::vector<std::vector<std::size_t>> adj(n);
  for (const Edge& e : edges) {
    PF_CHECK(e.first < n && e.second < n);
    if (reversed)
      adj[e.second].push_back(e.first);
    else
      adj[e.first].push_back(e.second);
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return adj;
}

// Renumber SCC ids so they follow a topological order of the condensation
// (ties broken by smallest member vertex, i.e. program order) and collect
// members. `raw_discovery` is the order the algorithm discovered the raw
// SCC ids in; it is preserved (translated to canonical ids) in
// discovery_order.
SccResult canonicalize(std::size_t n, const std::vector<int>& raw_id,
                       std::size_t raw_count, const std::vector<Edge>& edges,
                       const std::vector<std::size_t>& raw_discovery) {
  // Build condensation edges on raw ids.
  std::vector<Edge> cedges;
  for (const Edge& e : edges) {
    const int a = raw_id[e.first], b = raw_id[e.second];
    if (a != b) cedges.emplace_back(static_cast<std::size_t>(a),
                                    static_cast<std::size_t>(b));
  }
  // Tie-break by smallest member vertex: canonical ids then follow
  // program order wherever the DAG allows.
  std::vector<std::size_t> min_member(raw_count, SIZE_MAX);
  for (std::size_t v = 0; v < n; ++v) {
    auto& m = min_member[static_cast<std::size_t>(raw_id[v])];
    m = std::min(m, v);
  }
  const std::vector<std::size_t> order =
      topological_order_by_priority(raw_count, cedges, min_member);
  std::vector<int> new_of_raw(raw_count);
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    new_of_raw[order[pos]] = static_cast<int>(pos);

  SccResult out;
  out.scc_of.resize(n);
  out.members.resize(raw_count);
  for (std::size_t v = 0; v < n; ++v) {
    out.scc_of[v] = new_of_raw[static_cast<std::size_t>(raw_id[v])];
    out.members[static_cast<std::size_t>(out.scc_of[v])].push_back(v);
  }
  out.discovery_order.reserve(raw_count);
  for (const std::size_t raw : raw_discovery)
    out.discovery_order.push_back(
        static_cast<std::size_t>(new_of_raw[raw]));
  return out;
}

}  // namespace

SccResult kosaraju_sccs(std::size_t n, const std::vector<Edge>& edges) {
  const auto adj = adjacency(n, edges, /*reversed=*/false);
  const auto radj = adjacency(n, edges, /*reversed=*/true);

  // Pass 1: order vertices by DFS finish time (iterative DFS).
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> finish_order;
  finish_order.reserve(n);
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    // Stack of (vertex, next-child-index).
    std::vector<std::pair<std::size_t, std::size_t>> stack{{start, 0}};
    visited[start] = true;
    while (!stack.empty()) {
      auto& [v, ci] = stack.back();
      if (ci < adj[v].size()) {
        const std::size_t w = adj[v][ci++];
        if (!visited[w]) {
          visited[w] = true;
          stack.emplace_back(w, 0);
        }
      } else {
        finish_order.push_back(v);
        stack.pop_back();
      }
    }
  }

  // Pass 2: DFS on the reverse graph in decreasing finish time.
  std::vector<int> raw_id(n, -1);
  int count = 0;
  for (auto it = finish_order.rbegin(); it != finish_order.rend(); ++it) {
    if (raw_id[*it] != -1) continue;
    std::vector<std::size_t> stack{*it};
    raw_id[*it] = count;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      for (const std::size_t w : radj[v]) {
        if (raw_id[w] == -1) {
          raw_id[w] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  // Raw id k was discovered k-th in pass 2 (decreasing finish time), which
  // visits SCCs in topological order.
  std::vector<std::size_t> discovery(static_cast<std::size_t>(count));
  for (std::size_t k = 0; k < discovery.size(); ++k) discovery[k] = k;
  return canonicalize(n, raw_id, static_cast<std::size_t>(count), edges,
                      discovery);
}

SccResult tarjan_sccs(std::size_t n, const std::vector<Edge>& edges) {
  const auto adj = adjacency(n, edges, /*reversed=*/false);
  std::vector<int> index(n, -1), lowlink(n, 0), raw_id(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  int next_index = 0, count = 0;

  // Iterative Tarjan with an explicit call frame stack.
  struct Frame {
    std::size_t v;
    std::size_t child = 0;
  };
  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    std::vector<Frame> call{{start}};
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!call.empty()) {
      Frame& f = call.back();
      if (f.child < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call.push_back(Frame{w});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            raw_id[w] = count;
            if (w == f.v) break;
          }
          ++count;
        }
        const std::size_t v = f.v;
        call.pop_back();
        if (!call.empty())
          lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
      }
    }
  }
  // Tarjan discovers SCCs in REVERSE topological order; flip it so the
  // discovery_order contract (topological) holds.
  std::vector<std::size_t> discovery(static_cast<std::size_t>(count));
  for (std::size_t k = 0; k < discovery.size(); ++k)
    discovery[k] = static_cast<std::size_t>(count) - 1 - k;
  return canonicalize(n, raw_id, static_cast<std::size_t>(count), edges,
                      discovery);
}

std::vector<Edge> condensation_edges(const SccResult& sccs,
                                     const std::vector<Edge>& edges) {
  std::vector<Edge> out;
  for (const Edge& e : edges) {
    const int a = sccs.scc_of[e.first], b = sccs.scc_of[e.second];
    if (a != b) out.emplace_back(static_cast<std::size_t>(a),
                                 static_cast<std::size_t>(b));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::size_t> topological_order_by_priority(
    std::size_t n, const std::vector<Edge>& edges,
    const std::vector<std::size_t>& priority) {
  PF_CHECK(priority.size() == n);
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> adj(n);
  {
    auto dedup = edges;
    std::sort(dedup.begin(), dedup.end());
    dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
    for (const Edge& e : dedup) {
      PF_CHECK(e.first < n && e.second < n);
      adj[e.first].push_back(e.second);
      ++indegree[e.second];
    }
  }
  using Entry = std::pair<std::size_t, std::size_t>;  // (priority, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indegree[v] == 0) ready.emplace(priority[v], v);
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t v = ready.top().second;
    ready.pop();
    order.push_back(v);
    for (const std::size_t w : adj[v])
      if (--indegree[w] == 0) ready.emplace(priority[w], w);
  }
  PF_CHECK_MSG(order.size() == n,
               "topological_order_by_priority on a cyclic graph");
  return order;
}

std::vector<std::size_t> topological_order(std::size_t n,
                                           const std::vector<Edge>& edges) {
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> adj(n);
  {
    auto dedup = edges;
    std::sort(dedup.begin(), dedup.end());
    dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
    for (const Edge& e : dedup) {
      PF_CHECK(e.first < n && e.second < n);
      adj[e.first].push_back(e.second);
      ++indegree[e.second];
    }
  }
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<>> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indegree[v] == 0) ready.push(v);
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const std::size_t w : adj[v])
      if (--indegree[w] == 0) ready.push(w);
  }
  PF_CHECK_MSG(order.size() == n, "topological_order on a cyclic graph");
  return order;
}

}  // namespace pf::ddg
