#include "ddg/dependences.h"

#include <algorithm>
#include <sstream>

#include "support/stats.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace pf::ddg {

const char* to_string(DepKind k) {
  switch (k) {
    case DepKind::kFlow:
      return "flow";
    case DepKind::kAnti:
      return "anti";
    case DepKind::kOutput:
      return "output";
    case DepKind::kInput:
      return "input";
  }
  return "?";
}

poly::AffineExpr Dependence::lift_src(const poly::AffineExpr& e) const {
  PF_CHECK(e.dims() == src_dim + num_params);
  std::vector<std::size_t> map(e.dims());
  for (std::size_t k = 0; k < src_dim; ++k) map[k] = k;
  for (std::size_t q = 0; q < num_params; ++q)
    map[src_dim + q] = src_dim + dst_dim + q;
  return e.remap(src_dim + dst_dim + num_params, map);
}

poly::AffineExpr Dependence::lift_dst(const poly::AffineExpr& e) const {
  PF_CHECK(e.dims() == dst_dim + num_params);
  std::vector<std::size_t> map(e.dims());
  for (std::size_t k = 0; k < dst_dim; ++k) map[k] = src_dim + k;
  for (std::size_t q = 0; q < num_params; ++q)
    map[dst_dim + q] = src_dim + dst_dim + q;
  return e.remap(src_dim + dst_dim + num_params, map);
}

namespace {

DepKind classify(bool src_write, bool dst_write) {
  if (src_write && dst_write) return DepKind::kOutput;
  if (src_write) return DepKind::kFlow;
  if (dst_write) return DepKind::kAnti;
  return DepKind::kInput;
}

}  // namespace

namespace {

// All dependences of one (src, dst) statement pair, in the serial
// discovery order (access pair major, depth minor), ids unassigned.
// Pairs share nothing -- each candidate polyhedron's ILP emptiness test
// is independent -- so pairs are the unit of parallelism.
std::vector<Dependence> analyze_pair(const ir::Scop& scop, std::size_t si,
                                     std::size_t sj,
                                     const AnalysisOptions& options) {
  support::count(support::Counter::kDepPairsAnalyzed);
  support::TraceSpan span("deps", "analyze_pair");
  if (span.active()) {
    span.attr("src", scop.statement(si).name());
    span.attr("dst", scop.statement(sj).name());
  }
  std::size_t polyhedra_tested = 0;
  const std::size_t p = scop.num_params();
  const ir::Statement& a = scop.statement(si);
  const ir::Statement& b = scop.statement(sj);
  const std::size_t common = scop.common_loop_depth(a, b);
  const std::size_t ms = a.dim(), mt = b.dim();
  const std::size_t total = ms + mt + p;
  std::vector<Dependence> found;

  // Shared building blocks for every access pair of this statement
  // pair: embedded domains + context.
  poly::IntegerSet base(total);
  {
    Dependence proto;  // only for the lift helpers
    proto.src_dim = ms;
    proto.dst_dim = mt;
    proto.num_params = p;
    for (const poly::Constraint& c : a.domain().constraints())
      base.add_constraint(
          poly::Constraint{proto.lift_src(c.expr), c.is_equality});
    for (const poly::Constraint& c : b.domain().constraints())
      base.add_constraint(
          poly::Constraint{proto.lift_dst(c.expr), c.is_equality});
    for (const poly::Constraint& c : scop.context().constraints()) {
      std::vector<std::size_t> map(p);
      for (std::size_t q = 0; q < p; ++q) map[q] = ms + mt + q;
      base.add_constraint(
          poly::Constraint{c.expr.remap(total, map), c.is_equality});
    }
  }

  for (std::size_t xa = 0; xa < a.accesses().size(); ++xa) {
    for (std::size_t xb = 0; xb < b.accesses().size(); ++xb) {
      const ir::Access& ax = a.accesses()[xa];
      const ir::Access& bx = b.accesses()[xb];
      if (ax.array_id != bx.array_id) continue;
      const DepKind kind = classify(ax.is_write, bx.is_write);
      if (kind == DepKind::kInput) {
        if (!options.compute_input_deps) continue;
        if (si == sj) continue;  // self-reuse adds nothing
      }

      Dependence proto;
      proto.src_dim = ms;
      proto.dst_dim = mt;
      proto.num_params = p;

      poly::IntegerSet access_eq(total);
      for (std::size_t d = 0; d < ax.subscripts.size(); ++d)
        access_eq.add_constraint(poly::Constraint::eq(
            proto.lift_src(ax.subscripts[d]),
            proto.lift_dst(bx.subscripts[d])));

      for (std::size_t depth = 0; depth <= common; ++depth) {
        // Loop-independent case requires textual precedence.
        if (depth == common && a.index() >= b.index()) continue;

        poly::IntegerSet dep_poly = base;
        dep_poly.intersect(access_eq);
        for (std::size_t l = 0; l < depth; ++l)
          dep_poly.add_constraint(poly::Constraint::eq(
              poly::AffineExpr::var(total, l),
              poly::AffineExpr::var(total, ms + l)));
        if (depth < common) {
          // s[depth] < t[depth].
          dep_poly.add_constraint(poly::Constraint::ge0(
              poly::AffineExpr::var(total, ms + depth) -
              poly::AffineExpr::var(total, depth) -
              poly::AffineExpr::constant(total, 1)));
        }
        support::count(support::Counter::kDepPolyhedraBuilt);
        ++polyhedra_tested;
        if (dep_poly.is_empty(options.ilp)) continue;

        Dependence dep = proto;
        dep.src = si;
        dep.dst = sj;
        dep.src_access = xa;
        dep.dst_access = xb;
        dep.kind = kind;
        dep.depth = depth;
        dep.poly = std::move(dep_poly);
        found.push_back(std::move(dep));
      }
    }
  }
  if (span.active()) {
    span.attr("polyhedra_tested", static_cast<i64>(polyhedra_tested));
    span.attr("deps_found", static_cast<i64>(found.size()));
  }
  return found;
}

}  // namespace

DependenceGraph DependenceGraph::analyze(const ir::Scop& scop,
                                         const AnalysisOptions& options) {
  support::TraceSpan span("deps", "analyze");
  DependenceGraph g;
  g.scop_ = &scop;
  const std::size_t n = scop.num_statements();
  g.adj_.assign(n, std::vector<bool>(n, false));
  g.reuse_.assign(n, std::vector<bool>(n, false));

  // Fan the statement-pair loop out across the pool (jobs == 1 runs
  // inline on this thread: the exact old serial path), then merge the
  // per-pair results in (si, sj) order. Ids are assigned during the
  // deterministic merge, so the resulting graph -- order, ids, polyhedra
  // -- is byte-identical at every thread count.
  std::vector<std::vector<Dependence>> per_pair(n * n);
  const std::size_t jobs =
      options.jobs != 0 ? options.jobs : support::default_jobs();
  {
    support::ThreadPool pool(std::min(jobs, n * n));
    pool.parallel_for(0, n * n, [&](std::size_t pair) {
      per_pair[pair] = analyze_pair(scop, pair / n, pair % n, options);
    });
  }

  std::size_t next_id = 0;
  for (std::size_t pair = 0; pair < n * n; ++pair) {
    const std::size_t si = pair / n, sj = pair % n;
    for (Dependence& dep : per_pair[pair]) {
      dep.id = next_id++;
      if (dep.kind == DepKind::kInput) {
        g.reuse_[si][sj] = g.reuse_[sj][si] = true;
        g.rar_.push_back(std::move(dep));
      } else {
        g.adj_[si][sj] = true;
        g.reuse_[si][sj] = g.reuse_[sj][si] = true;
        g.deps_.push_back(std::move(dep));
      }
    }
  }
  if (span.active()) {
    span.attr("statements", static_cast<i64>(n));
    span.attr("deps", static_cast<i64>(g.deps_.size()));
    span.attr("rar_deps", static_cast<i64>(g.rar_.size()));
  }
  // Emitted from the serial merge, so the remark stream is identical at
  // every --jobs count.
  if (support::Tracer::remarks_on())
    support::remark("deps", "dependence analysis complete",
                    {{"statements", std::to_string(n)},
                     {"deps", std::to_string(g.deps_.size())},
                     {"rar_deps", std::to_string(g.rar_.size())}});
  return g;
}

bool DependenceGraph::has_edge(std::size_t src, std::size_t dst) const {
  return adj_.at(src).at(dst);
}

bool DependenceGraph::has_reuse_edge(std::size_t a, std::size_t b) const {
  return reuse_.at(a).at(b);
}

std::vector<Edge> DependenceGraph::stmt_edges() const {
  std::vector<Edge> edges;
  const std::size_t n = adj_.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (adj_[i][j]) edges.emplace_back(i, j);
  return edges;
}

SccResult DependenceGraph::sccs() const {
  return kosaraju_sccs(scop_->num_statements(), stmt_edges());
}

std::string DependenceGraph::to_string() const {
  std::ostringstream os;
  auto emit = [&](const Dependence& d) {
    os << "  " << scop_->statement(d.src).name() << " -> "
       << scop_->statement(d.dst).name() << " [" << ddg::to_string(d.kind)
       << ", array " << scop_->array(scop_->statement(d.src)
                                         .accesses()[d.src_access]
                                         .array_id)
                            .name
       << ", depth " << d.depth << "]\n";
  };
  os << "dependences (" << deps_.size() << "):\n";
  for (const Dependence& d : deps_) emit(d);
  os << "input dependences (" << rar_.size() << "):\n";
  for (const Dependence& d : rar_) emit(d);
  return os.str();
}

}  // namespace pf::ddg
