#include "ddg/dependences.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/arena.h"
#include "support/budget.h"
#include "support/stats.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace pf::ddg {

const char* to_string(DepKind k) {
  switch (k) {
    case DepKind::kFlow:
      return "flow";
    case DepKind::kAnti:
      return "anti";
    case DepKind::kOutput:
      return "output";
    case DepKind::kInput:
      return "input";
  }
  return "?";
}

poly::AffineExpr Dependence::lift_src(const poly::AffineExpr& e) const {
  PF_CHECK(e.dims() == src_dim + num_params);
  std::vector<std::size_t> map(e.dims());
  for (std::size_t k = 0; k < src_dim; ++k) map[k] = k;
  for (std::size_t q = 0; q < num_params; ++q)
    map[src_dim + q] = src_dim + dst_dim + q;
  return e.remap(src_dim + dst_dim + num_params, map);
}

poly::AffineExpr Dependence::lift_dst(const poly::AffineExpr& e) const {
  PF_CHECK(e.dims() == dst_dim + num_params);
  std::vector<std::size_t> map(e.dims());
  for (std::size_t k = 0; k < dst_dim; ++k) map[k] = src_dim + k;
  for (std::size_t q = 0; q < num_params; ++q)
    map[dst_dim + q] = src_dim + dst_dim + q;
  return e.remap(src_dim + dst_dim + num_params, map);
}

namespace {

DepKind classify(bool src_write, bool dst_write) {
  if (src_write && dst_write) return DepKind::kOutput;
  if (src_write) return DepKind::kFlow;
  if (dst_write) return DepKind::kAnti;
  return DepKind::kInput;
}

}  // namespace

namespace {

// One statement pair's analysis outcome. `degraded` means the whole pair
// fell back to the conservative over-approximation (every candidate
// polyhedron assumed non-empty); individual deps can also be `assumed`
// when only their own emptiness test was inconclusive.
struct PairResult {
  std::vector<Dependence> deps;
  bool degraded = false;
  std::string cause;          // BudgetExceeded::cause() token
  std::size_t assumed = 0;    // deps with .assumed set
};

// The candidate enumeration shared by the exact and the degraded path.
// With assume_all, emptiness tests are skipped and every structurally
// satisfiable candidate becomes an assumed dependence.
std::vector<Dependence> enumerate_pair_deps(const ir::Scop& scop,
                                            std::size_t si, std::size_t sj,
                                            const AnalysisOptions& options,
                                            bool assume_all,
                                            std::size_t* polyhedra_tested) {
  const std::size_t p = scop.num_params();
  const ir::Statement& a = scop.statement(si);
  const ir::Statement& b = scop.statement(sj);
  const std::size_t common = scop.common_loop_depth(a, b);
  const std::size_t ms = a.dim(), mt = b.dim();
  const std::size_t total = ms + mt + p;
  std::vector<Dependence> found;

  // Shared building blocks for every access pair of this statement
  // pair: embedded domains + context.
  poly::IntegerSet base(total);
  {
    Dependence proto;  // only for the lift helpers
    proto.src_dim = ms;
    proto.dst_dim = mt;
    proto.num_params = p;
    for (const poly::Constraint& c : a.domain().constraints())
      base.add_constraint(
          poly::Constraint{proto.lift_src(c.expr), c.is_equality});
    for (const poly::Constraint& c : b.domain().constraints())
      base.add_constraint(
          poly::Constraint{proto.lift_dst(c.expr), c.is_equality});
    for (const poly::Constraint& c : scop.context().constraints()) {
      std::vector<std::size_t> map(p);
      for (std::size_t q = 0; q < p; ++q) map[q] = ms + mt + q;
      base.add_constraint(
          poly::Constraint{c.expr.remap(total, map), c.is_equality});
    }
  }

  for (std::size_t xa = 0; xa < a.accesses().size(); ++xa) {
    for (std::size_t xb = 0; xb < b.accesses().size(); ++xb) {
      const ir::Access& ax = a.accesses()[xa];
      const ir::Access& bx = b.accesses()[xb];
      if (ax.array_id != bx.array_id) continue;
      const DepKind kind = classify(ax.is_write, bx.is_write);
      if (kind == DepKind::kInput) {
        if (!options.compute_input_deps) continue;
        if (si == sj) continue;  // self-reuse adds nothing
      }

      Dependence proto;
      proto.src_dim = ms;
      proto.dst_dim = mt;
      proto.num_params = p;

      poly::IntegerSet access_eq(total);
      for (std::size_t d = 0; d < ax.subscripts.size(); ++d)
        access_eq.add_constraint(poly::Constraint::eq(
            proto.lift_src(ax.subscripts[d]),
            proto.lift_dst(bx.subscripts[d])));

      for (std::size_t depth = 0; depth <= common; ++depth) {
        // Loop-independent case requires textual precedence.
        if (depth == common && a.index() >= b.index()) continue;

        poly::IntegerSet dep_poly = base;
        dep_poly.intersect(access_eq);
        for (std::size_t l = 0; l < depth; ++l)
          dep_poly.add_constraint(poly::Constraint::eq(
              poly::AffineExpr::var(total, l),
              poly::AffineExpr::var(total, ms + l)));
        if (depth < common) {
          // s[depth] < t[depth].
          dep_poly.add_constraint(poly::Constraint::ge0(
              poly::AffineExpr::var(total, ms + depth) -
              poly::AffineExpr::var(total, depth) -
              poly::AffineExpr::constant(total, 1)));
        }
        support::count(support::Counter::kDepPolyhedraBuilt);
        ++*polyhedra_tested;
        bool assumed = false;
        if (assume_all) {
          if (dep_poly.trivially_empty()) continue;
          assumed = true;
        } else {
          support::Budget* budget = support::current_budget();
          bool maybe_nonempty = false;
          try {
            support::budget_charge(support::BudgetSite::kDepPair);
            // A conservative is_empty (budget ran out *inside* the solve)
            // returns false after raising a fault; the fault-count delta
            // is how we know this candidate is assumed, not proven.
            const i64 faults_before =
                budget != nullptr ? budget->faults() : 0;
            maybe_nonempty = !dep_poly.is_empty(options.ilp);
            assumed = budget != nullptr && budget->faults() != faults_before;
          } catch (const support::BudgetExceeded&) {
            // Fuel ran out at the per-candidate charge itself: keep the
            // candidate unless it is structurally contradictory.
            maybe_nonempty = !dep_poly.trivially_empty();
            assumed = maybe_nonempty;
          }
          if (!maybe_nonempty) continue;
        }

        Dependence dep = proto;
        dep.src = si;
        dep.dst = sj;
        dep.src_access = xa;
        dep.dst_access = xb;
        dep.kind = kind;
        dep.depth = depth;
        dep.assumed = assumed;
        dep.poly = std::move(dep_poly);
        found.push_back(std::move(dep));
      }
    }
  }
  return found;
}

// All dependences of one (src, dst) statement pair, in the serial
// discovery order (access pair major, depth minor), ids unassigned.
// Pairs share nothing -- each candidate polyhedron's ILP emptiness test
// is independent -- so pairs are the unit of parallelism. `pair_ordinal`
// is the deterministic linear pair index (si * n + sj): the dep_pair
// fault-injection unit, stable at every --jobs.
PairResult analyze_pair(const ir::Scop& scop, std::size_t si, std::size_t sj,
                        std::size_t pair_ordinal,
                        const AnalysisOptions& options) {
  support::count(support::Counter::kDepPairsAnalyzed);
  const auto t0 = std::chrono::steady_clock::now();
  // The fast-lane simplex tableaux of every solve under this pair come
  // from the thread's arena; releasing per pair puts a hard cap on the
  // storage one pathological pair can pin (the release-to-empty trim).
  support::ArenaScope arena_scope(
      support::Arena::thread_local_instance());
  support::TraceSpan span("deps", "analyze_pair");
  if (span.active()) {
    span.attr("src", scop.statement(si).name());
    span.attr("dst", scop.statement(sj).name());
  }
  std::size_t polyhedra_tested = 0;
  PairResult out;
  try {
    support::budget_op_at(support::BudgetSite::kDepPair,
                          static_cast<i64>(pair_ordinal));
    out.deps = enumerate_pair_deps(scop, si, sj, options,
                                   /*assume_all=*/false, &polyhedra_tested);
  } catch (const support::BudgetExceeded& e) {
    // Recovery boundary: the whole pair degrades to the conservative
    // over-approximation. Runs with the budget suspended -- the rebuild
    // must always complete.
    out.degraded = true;
    out.cause = e.cause();
    out.deps.clear();
    support::BudgetSuspend suspend;
    out.deps = enumerate_pair_deps(scop, si, sj, options,
                                   /*assume_all=*/true, &polyhedra_tested);
  }
  for (const Dependence& dep : out.deps)
    if (dep.assumed) ++out.assumed;
  if (span.active()) {
    span.attr("polyhedra_tested", static_cast<i64>(polyhedra_tested));
    span.attr("deps_found", static_cast<i64>(out.deps.size()));
  }
  support::observe(support::Hist::kDepPairMicros,
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  return out;
}

}  // namespace

DependenceGraph DependenceGraph::analyze(const ir::Scop& scop,
                                         const AnalysisOptions& options) {
  support::TraceSpan span("deps", "analyze");
  DependenceGraph g;
  g.scop_ = &scop;
  const std::size_t n = scop.num_statements();
  g.adj_.assign(n, std::vector<bool>(n, false));
  g.reuse_.assign(n, std::vector<bool>(n, false));

  // Fan the statement-pair loop out across the pool (jobs == 1 runs
  // inline on this thread: the exact old serial path), then merge the
  // per-pair results in (si, sj) order. Ids are assigned during the
  // deterministic merge, so the resulting graph -- order, ids, polyhedra
  // -- is byte-identical at every thread count.
  std::vector<PairResult> per_pair(n * n);
  const std::size_t jobs =
      options.jobs != 0 ? options.jobs : support::default_jobs();

  // Budget determinism: a shared fuel counter raced by the workers would
  // make *which* pair exhausts first depend on thread scheduling. Instead
  // each pair gets its own sub-budget with a fixed fuel allowance
  // (decided before the loop) and fresh injection ordinals; the spend is
  // merged back serially afterwards. Exhaustion is then a per-pair,
  // order-independent fact -- byte-identical at every --jobs.
  support::Budget* root = support::current_budget();
  std::vector<support::Budget> task_budgets;
  if (root != nullptr) {
    const i64 allowance = root->task_allowance(n * n);
    task_budgets.reserve(n * n);
    for (std::size_t pair = 0; pair < n * n; ++pair)
      task_budgets.push_back(root->make_task_budget(allowance));
  }
  {
    support::ThreadPool pool(std::min(jobs, n * n));
    pool.parallel_for(0, n * n, [&](std::size_t pair) {
      support::BudgetScope scope(root != nullptr ? &task_budgets[pair]
                                                 : nullptr);
      per_pair[pair] = analyze_pair(scop, pair / n, pair % n, pair, options);
    });
  }
  if (root != nullptr)
    for (const support::Budget& task : task_budgets) root->absorb(task);

  std::size_t next_id = 0;
  for (std::size_t pair = 0; pair < n * n; ++pair) {
    const std::size_t si = pair / n, sj = pair % n;
    PairResult& pr = per_pair[pair];
    // Budget outcomes are reported from this serial merge, in pair order,
    // so remarks and counters are deterministic at every --jobs.
    if (pr.degraded) {
      support::count(support::Counter::kBudgetDowngrades);
      if (support::Tracer::remarks_on())
        support::remark("budget",
                        "dependence pair degraded to over-approximation",
                        {{"src", scop.statement(si).name()},
                         {"dst", scop.statement(sj).name()},
                         {"cause", pr.cause},
                         {"assumed_deps", std::to_string(pr.deps.size())}});
    } else if (pr.assumed > 0 && support::Tracer::remarks_on()) {
      support::remark("budget", "dependences conservatively assumed",
                      {{"src", scop.statement(si).name()},
                       {"dst", scop.statement(sj).name()},
                       {"assumed_deps", std::to_string(pr.assumed)}});
    }
    if (pr.assumed > 0)
      support::count(support::Counter::kBudgetAssumedDeps,
                     static_cast<i64>(pr.assumed));
    for (Dependence& dep : pr.deps) {
      dep.id = next_id++;
      if (dep.kind == DepKind::kInput) {
        g.reuse_[si][sj] = g.reuse_[sj][si] = true;
        g.rar_.push_back(std::move(dep));
      } else {
        g.adj_[si][sj] = true;
        g.reuse_[si][sj] = g.reuse_[sj][si] = true;
        g.deps_.push_back(std::move(dep));
      }
    }
  }
  if (span.active()) {
    span.attr("statements", static_cast<i64>(n));
    span.attr("deps", static_cast<i64>(g.deps_.size()));
    span.attr("rar_deps", static_cast<i64>(g.rar_.size()));
  }
  // Emitted from the serial merge, so the remark stream is identical at
  // every --jobs count.
  if (support::Tracer::remarks_on())
    support::remark("deps", "dependence analysis complete",
                    {{"statements", std::to_string(n)},
                     {"deps", std::to_string(g.deps_.size())},
                     {"rar_deps", std::to_string(g.rar_.size())}});
  return g;
}

bool DependenceGraph::has_edge(std::size_t src, std::size_t dst) const {
  return adj_.at(src).at(dst);
}

bool DependenceGraph::has_reuse_edge(std::size_t a, std::size_t b) const {
  return reuse_.at(a).at(b);
}

std::vector<Edge> DependenceGraph::stmt_edges() const {
  std::vector<Edge> edges;
  const std::size_t n = adj_.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (adj_[i][j]) edges.emplace_back(i, j);
  return edges;
}

SccResult DependenceGraph::sccs() const {
  return kosaraju_sccs(scop_->num_statements(), stmt_edges());
}

std::string DependenceGraph::to_string() const {
  std::ostringstream os;
  auto emit = [&](const Dependence& d) {
    os << "  " << scop_->statement(d.src).name() << " -> "
       << scop_->statement(d.dst).name() << " [" << ddg::to_string(d.kind)
       << ", array " << scop_->array(scop_->statement(d.src)
                                         .accesses()[d.src_access]
                                         .array_id)
                            .name
       << ", depth " << d.depth << (d.assumed ? ", assumed" : "")
       << "]\n";
  };
  os << "dependences (" << deps_.size() << "):\n";
  for (const Dependence& d : deps_) emit(d);
  os << "input dependences (" << rar_.size() << "):\n";
  for (const Dependence& d : rar_) emit(d);
  return os.str();
}

}  // namespace pf::ddg
