// Directed-graph utilities: strongly connected components (Kosaraju's
// algorithm, as cited by the paper [30], plus Tarjan's as a cross-check)
// and condensation/topological ordering.
//
// Vertices are statement indices 0..n-1; edges are (src, dst) pairs.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace pf::ddg {

using Edge = std::pair<std::size_t, std::size_t>;

struct SccResult {
  /// scc_of[v] = id of v's SCC. Ids are numbered in a topological order of
  /// the condensation: every edge goes from a lower or equal id to a
  /// higher or equal id (equal only within an SCC).
  std::vector<int> scc_of;
  /// members[id] = vertices of that SCC, in ascending vertex order.
  std::vector<std::vector<std::size_t>> members;
  /// The order in which the algorithm *discovered* the SCCs (position ->
  /// canonical id). For Kosaraju this is the DFS-driven order Pluto's
  /// default fusion model uses as its pre-fusion schedule -- it follows
  /// dependence chains depth-first, which is exactly the behavior the
  /// paper criticizes (Section 2.3). Always a topological order.
  std::vector<std::size_t> discovery_order;

  std::size_t num_sccs() const { return members.size(); }
};

/// Kosaraju's two-pass SCC algorithm.
SccResult kosaraju_sccs(std::size_t num_vertices, const std::vector<Edge>& edges);

/// Tarjan's one-pass SCC algorithm (iterative). Same result contract.
SccResult tarjan_sccs(std::size_t num_vertices, const std::vector<Edge>& edges);

/// Edges of the condensation (SCC DAG), deduplicated, excluding self-loops.
std::vector<Edge> condensation_edges(const SccResult& sccs,
                                     const std::vector<Edge>& edges);

/// A topological order of a DAG given by `edges` over `num_vertices`
/// vertices. Ties broken by smallest vertex first (deterministic). Throws
/// if the graph has a cycle.
std::vector<std::size_t> topological_order(std::size_t num_vertices,
                                           const std::vector<Edge>& edges);

/// Topological order choosing, among ready vertices, the one with the
/// smallest priority value (ties by vertex id). Used by the scheduler to
/// keep cut orders as close as possible to the policy's pre-fusion order
/// while staying legal.
std::vector<std::size_t> topological_order_by_priority(
    std::size_t num_vertices, const std::vector<Edge>& edges,
    const std::vector<std::size_t>& priority);

}  // namespace pf::ddg
