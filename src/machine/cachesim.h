// Multi-level set-associative LRU cache simulator.
//
// This is the measurement half of the simulated testbed (DESIGN.md
// substitution #2): the interpreter's access trace is replayed through a
// cache hierarchy configured like the paper's Xeon E5-2650 (32 KB L1 /
// 256 KB L2 private, 20 MB shared L3, 64-byte lines), turning "data
// reuse" -- the quantity loop fusion optimizes -- into counted hits and
// misses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/intmath.h"

namespace pf::machine {

struct CacheLevelConfig {
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 64;
  std::size_t associativity = 8;
  std::string name = "L?";
};

struct CacheConfig {
  std::vector<CacheLevelConfig> levels;

  /// The paper's testbed: Intel Xeon E5-2650 (Sandy Bridge-EP).
  static CacheConfig xeon_e5_2650();
  /// A tiny hierarchy for tests (hit/miss behavior easy to reason about).
  static CacheConfig tiny();
};

struct CacheStats {
  std::vector<std::uint64_t> hits;    // per level
  std::vector<std::uint64_t> misses;  // per level (miss at that level)
  std::uint64_t accesses = 0;

  /// Misses at the last level = trips to memory.
  std::uint64_t memory_accesses() const {
    return misses.empty() ? 0 : misses.back();
  }
};

class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  /// Simulate one access. Lookup proceeds L1 -> L2 -> ...; a hit at level
  /// k counts hits[k] and misses[0..k); the line is filled into every
  /// level above the hit (inclusive hierarchy).
  void access(std::uint64_t address, bool is_write);

  const CacheStats& stats() const { return stats_; }
  void reset_stats();

  std::size_t num_levels() const { return levels_.size(); }

 private:
  struct Set {
    // Tags in LRU order: front = most recently used.
    std::vector<std::uint64_t> tags;
  };
  struct Level {
    CacheLevelConfig config;
    std::size_t num_sets = 0;
    std::vector<Set> sets;
    // Returns true on hit; on miss inserts the line (LRU eviction).
    bool touch(std::uint64_t line_addr);
  };

  std::vector<Level> levels_;
  CacheStats stats_;
};

/// Deterministic synthetic address layout for a set of arrays: array `a`
/// element `idx` lives at base(a) + 8*idx, bases line-aligned and packed.
class AddressMap {
 public:
  /// sizes[a] = element count of array a.
  explicit AddressMap(const std::vector<std::size_t>& sizes,
                      std::size_t line_bytes = 64);
  std::uint64_t address(std::size_t array_id, i64 element_index) const;

 private:
  std::vector<std::uint64_t> bases_;
  std::vector<std::size_t> sizes_;
};

}  // namespace pf::machine
