#include "machine/perfmodel.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "exec/interp.h"
#include "support/strings.h"

namespace pf::machine {

const char* to_string(NestParallelism p) {
  switch (p) {
    case NestParallelism::kParallel:
      return "parallel";
    case NestParallelism::kPipelined:
      return "pipelined";
    case NestParallelism::kSerial:
      return "serial";
  }
  return "?";
}

namespace {

// Arithmetic-op count of a statement body (calls weighted heavier).
std::uint64_t body_ops(const ir::ExprPtr& e) {
  using K = ir::Expr::Kind;
  switch (e->kind) {
    case K::kNumber:
    case K::kAffine:
    case K::kAccess:
      return 0;
    case K::kBinary:
      return 1 + body_ops(e->lhs) + body_ops(e->rhs);
    case K::kUnaryMinus:
      return 1 + body_ops(e->operand);
    case K::kCall: {
      std::uint64_t acc = 4;
      for (const ir::ExprPtr& a : e->args) acc += body_ops(a);
      return acc;
    }
  }
  return 0;
}

// Trip count of a loop whose bounds depend only on parameters.
std::uint64_t outer_trip_count(const codegen::AstNode& loop,
                               const exec::ArrayStore& store,
                               std::size_t /*q_unused*/) {
  // Size the environment from the bound expressions' own space.
  PF_CHECK(!loop.lower.alternatives.empty() &&
           !loop.lower.alternatives[0].empty());
  const std::size_t dims = loop.lower.alternatives[0][0].expr.dims();
  PF_CHECK(dims >= store.scop().num_params());
  const std::size_t q = dims - store.scop().num_params();
  IntVector env(dims, 0);
  for (std::size_t j = 0; j < store.scop().num_params(); ++j)
    env[q + j] = store.params()[j];
  auto eval = [&](const codegen::LoopBound& b, bool lower) {
    bool first_alt = true;
    i64 result = 0;
    for (const auto& terms : b.alternatives) {
      bool first = true;
      i64 acc = 0;
      for (const codegen::BoundTerm& t : terms) {
        const i64 raw = t.expr.eval(env);
        const i64 v = lower ? ceil_div(raw, t.denom) : floor_div(raw, t.denom);
        if (first || (lower ? v > acc : v < acc)) acc = v;
        first = false;
      }
      if (first_alt || (lower ? acc < result : acc > result)) result = acc;
      first_alt = false;
    }
    return result;
  };
  const i64 lo = eval(loop.lower, true);
  const i64 hi = eval(loop.upper, false);
  return hi >= lo ? static_cast<std::uint64_t>(hi - lo + 1) : 0;
}

bool subtree_has_loop(const codegen::AstNode& n) {
  switch (n.kind) {
    case codegen::AstNode::Kind::kLoop:
      return true;
    case codegen::AstNode::Kind::kBlock:
      return std::any_of(
          n.children.begin(), n.children.end(),
          [](const codegen::AstPtr& c) { return subtree_has_loop(*c); });
    case codegen::AstNode::Kind::kStmt:
      return false;
  }
  return false;
}

std::size_t count_t_vars(const codegen::AstNode& n) {
  switch (n.kind) {
    case codegen::AstNode::Kind::kLoop:
      return std::max(n.t_index + 1, count_t_vars(*n.body));
    case codegen::AstNode::Kind::kBlock: {
      std::size_t q = 0;
      for (const codegen::AstPtr& c : n.children)
        q = std::max(q, count_t_vars(*c));
      return q;
    }
    case codegen::AstNode::Kind::kStmt:
      return 0;
  }
  return 0;
}

CacheStats delta(const CacheStats& after, const CacheStats& before) {
  CacheStats d;
  d.accesses = after.accesses - before.accesses;
  d.hits.resize(after.hits.size());
  d.misses.resize(after.misses.size());
  for (std::size_t k = 0; k < after.hits.size(); ++k) {
    d.hits[k] = after.hits[k] - before.hits[k];
    d.misses[k] = after.misses[k] - before.misses[k];
  }
  return d;
}

}  // namespace

ModelReport evaluate(const codegen::AstNode& root, exec::ArrayStore& store,
                     const MachineConfig& config,
                     const FootprintHints* hints) {
  const ir::Scop& scop = store.scop();
  PF_CHECK_MSG(config.hit_latency.size() == config.cache.levels.size(),
               "hit_latency must match cache level count");

  // Address layout + shared cache simulator for the whole program (so
  // inter-nest reuse is captured).
  std::vector<std::size_t> sizes;
  for (std::size_t a = 0; a < store.num_arrays(); ++a)
    sizes.push_back(store.size(a));
  const AddressMap amap(sizes,
                        config.cache.levels.front().line_bytes);
  CacheSim sim(config.cache);

  std::vector<std::uint64_t> stmt_ops;
  for (const ir::Statement& s : scop.statements())
    stmt_ops.push_back(body_ops(s.body()) + 1);  // +1 for the store

  const std::size_t q = count_t_vars(root);

  // Top-level segments: maximal loop nests (or lone statements) reached by
  // flattening blocks -- nested scalar levels produce nested blocks, and
  // each loop nest under them is its own fork/join region.
  std::vector<const codegen::AstNode*> segments;
  const std::function<void(const codegen::AstNode&)> collect =
      [&](const codegen::AstNode& n) {
        if (n.kind == codegen::AstNode::Kind::kBlock) {
          for (const codegen::AstPtr& c : n.children) collect(*c);
        } else {
          segments.push_back(&n);
        }
      };
  collect(root);

  ModelReport report;
  const exec::TraceHook hook = [&](std::size_t array, i64 idx, bool write) {
    sim.access(amap.address(array, idx), write);
  };

  for (const codegen::AstNode* seg : segments) {
    const CacheStats before = sim.stats();
    const exec::InterpStats stats = exec::interpret(*seg, store, hook);

    NestReport r;
    r.cache = delta(sim.stats(), before);
    r.instances = stats.statements_executed;
    for (std::size_t s = 0; s < stmt_ops.size(); ++s)
      r.flops += stats.per_statement[s] * stmt_ops[s];

    std::uint64_t outer_trips = 1;
    if (seg->kind == codegen::AstNode::Kind::kLoop) {
      outer_trips = outer_trip_count(*seg, store, q);
      if (seg->parallel)
        r.parallelism = NestParallelism::kParallel;
      else if (subtree_has_loop(*seg->body))
        // Legality guarantees all carried dependences are forward, so a
        // multi-dimensional nest with a carried outer loop can always run
        // as a doacross/wavefront pipeline -- the paper's "pipelined
        // parallel" codes -- at one synchronization per outer iteration.
        r.parallelism = NestParallelism::kPipelined;
      else
        r.parallelism = NestParallelism::kSerial;
    } else {
      r.parallelism = NestParallelism::kSerial;
    }
    r.wavefronts =
        r.parallelism == NestParallelism::kPipelined ? outer_trips : 1;

    r.compute_cycles = static_cast<double>(r.flops) * config.op_cost;
    r.memory_cycles = 0;
    for (std::size_t k = 0; k < r.cache.hits.size(); ++k)
      r.memory_cycles +=
          static_cast<double>(r.cache.hits[k]) * config.hit_latency[k];
    r.memory_cycles += static_cast<double>(r.cache.memory_accesses()) *
                       config.memory_latency;
    r.serial_cycles = r.compute_cycles + r.memory_cycles;

    const double p_eff = std::max(
        1.0, std::min(static_cast<double>(config.cores),
                      static_cast<double>(std::max<std::uint64_t>(
                          outer_trips, 1))));
    switch (r.parallelism) {
      case NestParallelism::kParallel:
        r.modeled_cycles = r.serial_cycles / p_eff + config.sync_cycles;
        break;
      case NestParallelism::kPipelined:
        r.modeled_cycles = r.serial_cycles / p_eff +
                           static_cast<double>(r.wavefronts) *
                               config.sync_cycles;
        break;
      case NestParallelism::kSerial:
        r.modeled_cycles = r.serial_cycles;
        break;
    }
    report.nests.push_back(std::move(r));
  }

  report.cache = sim.stats();
  for (const NestReport& r : report.nests) {
    report.serial_cycles += r.serial_cycles;
    report.modeled_cycles += r.modeled_cycles;
  }

  // Counted compulsory-traffic floor: distinct cells (exact counts from
  // --analyze) x element size, rounded up to cache lines, each fetched
  // from memory at least once. Derived from the counting engine, not the
  // simulated trace.
  if (hints != nullptr && hints->cells.size() == store.num_arrays()) {
    const double line =
        static_cast<double>(config.cache.levels.front().line_bytes);
    double bytes = 0;
    bool exact = true;
    for (const i64 cells : hints->cells) {
      if (cells < 0) {
        exact = false;
        break;
      }
      bytes += static_cast<double>(cells) * sizeof(double);
    }
    if (exact) {
      report.counted_footprint_bytes = bytes;
      report.compulsory_memory_cycles =
          std::ceil(bytes / line) * config.memory_latency;
    }
  }
  return report;
}

std::string ModelReport::to_string() const {
  TextTable t({"nest", "par", "instances", "flops", "L1-miss", "LL-miss",
               "serial cycles", "modeled cycles"});
  for (std::size_t i = 0; i < nests.size(); ++i) {
    const NestReport& r = nests[i];
    t.add_row({std::to_string(i), machine::to_string(r.parallelism),
               std::to_string(r.instances), std::to_string(r.flops),
               std::to_string(r.cache.misses.empty() ? 0 : r.cache.misses[0]),
               std::to_string(r.cache.memory_accesses()),
               fmt_double(r.serial_cycles, 0), fmt_double(r.modeled_cycles, 0)});
  }
  std::ostringstream os;
  os << t.to_string();
  os << "total serial cycles:  " << fmt_double(serial_cycles, 0) << "\n";
  os << "total modeled cycles: " << fmt_double(modeled_cycles, 0) << "\n";
  if (counted_footprint_bytes >= 0) {
    os << "counted footprint:    " << fmt_double(counted_footprint_bytes, 0)
       << " bytes (compulsory memory floor "
       << fmt_double(compulsory_memory_cycles, 0) << " cycles)\n";
  }
  return os.str();
}

}  // namespace pf::machine
