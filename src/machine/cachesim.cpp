#include "machine/cachesim.h"

#include <algorithm>

namespace pf::machine {

CacheConfig CacheConfig::xeon_e5_2650() {
  CacheConfig c;
  c.levels = {
      CacheLevelConfig{32 * 1024, 64, 8, "L1"},
      CacheLevelConfig{256 * 1024, 64, 8, "L2"},
      CacheLevelConfig{20 * 1024 * 1024, 64, 20, "L3"},
  };
  return c;
}

CacheConfig CacheConfig::tiny() {
  CacheConfig c;
  c.levels = {
      CacheLevelConfig{256, 64, 2, "L1"},
      CacheLevelConfig{1024, 64, 4, "L2"},
  };
  return c;
}

bool CacheSim::Level::touch(std::uint64_t line_addr) {
  Set& set = sets[line_addr % num_sets];
  const std::uint64_t tag = line_addr / num_sets;
  auto it = std::find(set.tags.begin(), set.tags.end(), tag);
  if (it != set.tags.end()) {
    // Move to front (MRU).
    set.tags.erase(it);
    set.tags.insert(set.tags.begin(), tag);
    return true;
  }
  set.tags.insert(set.tags.begin(), tag);
  if (set.tags.size() > config.associativity) set.tags.pop_back();
  return false;
}

CacheSim::CacheSim(CacheConfig config) {
  PF_CHECK_MSG(!config.levels.empty(), "cache needs at least one level");
  for (CacheLevelConfig& lc : config.levels) {
    PF_CHECK_MSG(lc.line_bytes > 0 && lc.associativity > 0 &&
                     lc.size_bytes >= lc.line_bytes * lc.associativity,
                 "bad cache level config for " << lc.name);
    Level level;
    level.config = lc;
    level.num_sets = lc.size_bytes / (lc.line_bytes * lc.associativity);
    PF_CHECK(level.num_sets > 0);
    level.sets.resize(level.num_sets);
    levels_.push_back(std::move(level));
  }
  stats_.hits.assign(levels_.size(), 0);
  stats_.misses.assign(levels_.size(), 0);
}

void CacheSim::access(std::uint64_t address, bool /*is_write*/) {
  ++stats_.accesses;
  // All levels share the line size of L1 for simplicity (true of the
  // modeled hardware).
  const std::uint64_t line = address / levels_[0].config.line_bytes;
  std::size_t hit_level = levels_.size();
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    if (levels_[k].touch(line)) {
      hit_level = k;
      break;
    }
  }
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    if (k < hit_level)
      ++stats_.misses[k];
    else if (k == hit_level)
      ++stats_.hits[k];
  }
  // Fill levels above the hit: Level::touch already inserted on miss.
}

void CacheSim::reset_stats() {
  std::fill(stats_.hits.begin(), stats_.hits.end(), 0);
  std::fill(stats_.misses.begin(), stats_.misses.end(), 0);
  stats_.accesses = 0;
}

AddressMap::AddressMap(const std::vector<std::size_t>& sizes,
                       std::size_t line_bytes)
    : sizes_(sizes) {
  std::uint64_t next = 0;
  for (const std::size_t n : sizes) {
    bases_.push_back(next);
    const std::uint64_t bytes = static_cast<std::uint64_t>(n) * 8;
    next += (bytes + line_bytes - 1) / line_bytes * line_bytes;
  }
}

std::uint64_t AddressMap::address(std::size_t array_id,
                                  i64 element_index) const {
  PF_CHECK(array_id < bases_.size());
  PF_CHECK_MSG(element_index >= 0 &&
                   static_cast<std::size_t>(element_index) < sizes_[array_id],
               "address out of array bounds");
  return bases_[array_id] + static_cast<std::uint64_t>(element_index) * 8;
}

}  // namespace pf::machine
