// Analytic multicore performance model (DESIGN.md substitution #2).
//
// The paper evaluates wall-clock on an 8-core Xeon; this container has one
// core, so the *parallelism* half of the evaluation is modeled:
//
//   For each top-level nest of the generated AST we measure, by
//   interpreting with a cache-simulator trace,
//     compute  = statement instances x per-instance op cost
//     memory   = hits/misses per level x level latencies
//   and classify the nest:
//     parallel  -- outermost loop carries no dependence: one fork/join,
//                  cycles = (compute + memory)/P' + sync
//     pipelined -- outermost loop carries a dependence but an inner level
//                  is parallel: wavefront execution, one synchronization
//                  per outer iteration:
//                  cycles = (compute + memory)/P' + wavefronts x sync
//     serial    -- no parallel level: cycles = compute + memory
//   with P' = min(cores, outer trip count).
//
// This is deliberately simple; it reproduces the paper's *shape*: fusion
// lowers the memory term (reuse), losing outer parallelism turns one sync
// into `wavefronts` syncs (the paper's "constant communication costs
// after each wavefront"), and the parallel/pipelined gap grows with core
// count.
#pragma once

#include "codegen/ast.h"
#include "exec/storage.h"
#include "machine/cachesim.h"

namespace pf::machine {

struct MachineConfig {
  CacheConfig cache = CacheConfig::xeon_e5_2650();
  int cores = 8;
  /// Access latencies in cycles, per hit level; the final entry is main
  /// memory (miss in the last cache level).
  std::vector<double> hit_latency = {4.0, 12.0, 40.0};
  double memory_latency = 200.0;
  /// Cycles per arithmetic operation in a statement body.
  double op_cost = 1.0;
  /// Fork/join or wavefront barrier cost in cycles.
  double sync_cycles = 20000.0;
};

enum class NestParallelism { kParallel, kPipelined, kSerial };

const char* to_string(NestParallelism p);

struct NestReport {
  NestParallelism parallelism = NestParallelism::kSerial;
  std::uint64_t instances = 0;
  std::uint64_t flops = 0;
  std::uint64_t wavefronts = 1;  // outer trip count when pipelined
  CacheStats cache;              // deltas attributable to this nest
  double compute_cycles = 0;
  double memory_cycles = 0;
  double serial_cycles = 0;    // compute + memory
  double modeled_cycles = 0;   // on `cores` cores per the model above
};

/// Exact per-array footprints from the --analyze counting engine. When
/// supplied, evaluate() derives the *compulsory* traffic floor -- the
/// bytes that must cross the memory bus at least once because they are
/// distinct cells -- from the counts instead of the simulated trace, and
/// reports it next to the simulated totals. A simulated memory total
/// below the counted floor would mean the trace under-covered the
/// program (e.g. a zero-trip parameter choice), so the report makes both
/// visible.
struct FootprintHints {
  /// cells[array_id] = distinct cells touched (exact count), or -1 when
  /// the count degraded to unknown/unbounded.
  std::vector<i64> cells;
};

struct ModelReport {
  std::vector<NestReport> nests;
  CacheStats cache;  // whole-program totals
  double serial_cycles = 0;
  double modeled_cycles = 0;
  /// Counted-footprint figures; negative when no hints were supplied or
  /// some array's count was not exact.
  double counted_footprint_bytes = -1;
  double compulsory_memory_cycles = -1;  // cold-miss cycle floor

  std::string to_string() const;
};

/// Run the model. Interprets the AST (so the store is updated exactly as
/// a normal run would) while feeding the cache simulator. `hints`
/// (optional) adds the counted compulsory-traffic floor to the report.
ModelReport evaluate(const codegen::AstNode& root, exec::ArrayStore& store,
                     const MachineConfig& config = {},
                     const FootprintHints* hints = nullptr);

}  // namespace pf::machine
